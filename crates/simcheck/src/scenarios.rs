//! Checkable workloads: one [`Scenario`] per control-plane protocol the
//! runtime implements, plus two with a known (reintroduced) bug.
//!
//! Every scenario arms the retry machinery with a zero-probability
//! [`FaultSpec`] — the fabric itself never injects a fault, so the
//! checker's `Drop`/`Delay` choices are the *only* source of
//! nondeterminism and every run is a pure function of its schedule. The
//! sanitizer runs in `Collect` mode with the protocol invariants
//! registered; workload bodies verify delivered bytes and panic on
//! mismatch, so data corruption surfaces as a violation too.

use hostmem::HostBuf;
use mpi_sim::{
    ChunkPolicy, CollAlgo, DataScheme, Datatype, FaultSpec, MpiConfig, MpiWorld, SchemeSel,
    Topology,
};
use mv2_gpu_nc::baselines::{fill_vector, verify_vector, VectorXfer};
use mv2_gpu_nc::GpuCluster;
use sim_core::{SanitizerMode, SimDur};

use crate::checker::CheckScheduler;
use crate::explore::{Budget, RunOutcome, Scenario};

/// Deterministic seed for the (zero-probability) fault spec that arms the
/// retry machinery.
const ARM_SEED: u64 = 1;

/// A 64 KiB strided vector (16 Ki rows of 4 bytes, stride 16) in a 256 KiB
/// buffer — always takes the staged (vbuf) rendezvous path.
fn staged_dtype() -> Datatype {
    let t = Datatype::vector(1 << 14, 1, 4, &Datatype::float());
    t.commit();
    t
}

fn verify_staged_rows(buf: &HostBuf) {
    for r in [0usize, 1, 1000, 16383] {
        let o = r * 16;
        let expect: Vec<u8> = (o..o + 4).map(|i| (i % 249) as u8).collect();
        assert_eq!(buf.read(o, 4), expect, "staged row {r} corrupted");
    }
}

/// Two ranks, one staged-rendezvous vector transfer (RTS → CTS window →
/// per-chunk FIN/CREDIT). The scenario with the richest control plane:
/// chunk-level flow control, FIN-NACK recovery, retransmits.
pub fn staged_2rank() -> Scenario {
    Scenario {
        name: "staged-2rank",
        budget: Budget::default_bounds(),
        run: Box::new(|schedule, rec| {
            let checker = CheckScheduler::new(schedule.clone());
            let world = MpiWorld::new(2)
                .with_config(MpiConfig {
                    chunk_size: 16 << 10,
                    policy: ChunkPolicy::Fixed,
                    ..MpiConfig::default()
                })
                .with_faults(FaultSpec::seeded(ARM_SEED))
                .with_sanitizer(SanitizerMode::Collect)
                .with_recorder(rec.clone())
                .with_scheduler(checker.clone());
            let (end, reports) = world.try_run_with_reports(|comm| {
                let t = staged_dtype();
                if comm.rank() == 0 {
                    let buf = HostBuf::from_vec((0..(1 << 18)).map(|i| (i % 249) as u8).collect());
                    comm.send(buf.base(), 1, &t, 1, 3);
                } else {
                    let buf = HostBuf::alloc(1 << 18);
                    let st = comm.recv(buf.base(), 1, &t, 0, 3);
                    assert_eq!(st.bytes, 64 << 10);
                    verify_staged_rows(&buf);
                }
            });
            RunOutcome {
                end: end.map(|t| t.as_nanos()),
                reports,
                log: checker.log(),
            }
        }),
    }
}

/// Two ranks, one direct (R-PUT) rendezvous transfer of contiguous bytes
/// (RTS → CTS-direct → RDMA write → FIN-direct).
///
/// With `bug_finalize_quiesce` set, this reintroduces PR 3's liveness
/// bug: finalize skips the dissemination barrier, so the sender exits as
/// soon as its own transfers complete and stops answering retransmits. A
/// single dropped FIN-direct then strands the receiver — its CTS
/// retransmits go unanswered until the retry budget exhausts.
pub fn direct_2rank(bug_finalize_quiesce: bool) -> Scenario {
    Scenario {
        name: if bug_finalize_quiesce {
            "direct-2rank-finalize-bug"
        } else {
            "direct-2rank"
        },
        budget: Budget::default_bounds(),
        run: Box::new(move |schedule, rec| {
            let checker = CheckScheduler::new(schedule.clone());
            let world = MpiWorld::new(2)
                .with_config(MpiConfig {
                    bug_finalize_quiesce,
                    ..MpiConfig::default()
                })
                .with_faults(FaultSpec::seeded(ARM_SEED))
                .with_sanitizer(SanitizerMode::Collect)
                .with_recorder(rec.clone())
                .with_scheduler(checker.clone());
            let (end, reports) = world.try_run_with_reports(|comm| {
                let t = Datatype::byte();
                t.commit();
                let n = 300 << 10;
                if comm.rank() == 0 {
                    let buf = HostBuf::from_vec((0..n).map(|i| (i % 253) as u8).collect());
                    comm.send(buf.base(), n, &t, 1, 0);
                } else {
                    let buf = HostBuf::alloc(n);
                    let st = comm.recv(buf.base(), n, &t, 0, 0);
                    assert_eq!(st.bytes, n);
                    for i in [0usize, 1, n / 2, n - 1] {
                        assert_eq!(buf.read(i, 1)[0], (i % 253) as u8, "byte {i} corrupted");
                    }
                }
            });
            RunOutcome {
                end: end.map(|t| t.as_nanos()),
                reports,
                log: checker.log(),
            }
        }),
    }
}

/// Two co-located ranks, one small eager message over the shared-memory
/// channel. Eager messages carry their own payload and use no control
/// packets at all, so this scenario has **zero decision points**: the
/// exhaustive pass is the single FIFO run. Kept as an honest baseline —
/// it documents that the eager path has no control-plane state to
/// misorder.
pub fn shm_eager_2rank() -> Scenario {
    Scenario {
        name: "shm-eager-2rank",
        budget: Budget::default_bounds(),
        run: Box::new(|schedule, rec| {
            let checker = CheckScheduler::new(schedule.clone());
            let world = MpiWorld::new(2)
                .with_ppn(2)
                .with_faults(FaultSpec::seeded(ARM_SEED))
                .with_sanitizer(SanitizerMode::Collect)
                .with_recorder(rec.clone())
                .with_scheduler(checker.clone());
            let (end, reports) = world.try_run_with_reports(|comm| {
                let t = Datatype::byte();
                t.commit();
                let n = 4 << 10;
                if comm.rank() == 0 {
                    let buf = HostBuf::from_vec(vec![42u8; n]);
                    comm.send(buf.base(), n, &t, 1, 0);
                } else {
                    let buf = HostBuf::alloc(n);
                    let st = comm.recv(buf.base(), n, &t, 0, 0);
                    assert_eq!(st.bytes, n);
                    assert_eq!(buf.read(0, n), vec![42u8; n]);
                }
            });
            RunOutcome {
                end: end.map(|t| t.as_nanos()),
                reports,
                log: checker.log(),
            }
        }),
    }
}

/// Two co-located GPU ranks, one D2D device-to-device vector transfer
/// (RTS → CTS-dev → FIN-dev → CREDIT-dev, all over the reliable shm
/// channel — drops are impossible by construction, so only delays are
/// explored). The D2D handshake is strictly sequential (each packet is
/// sent only after the previous one is processed), so no two control
/// packets are ever concurrently in flight and partial-order reduction
/// collapses the exploration to the single FIFO schedule.
pub fn d2d_2rank() -> Scenario {
    Scenario {
        name: "d2d-2rank",
        budget: Budget {
            allow_drops: false,
            ..Budget::default_bounds()
        },
        run: Box::new(|schedule, rec| {
            let checker = CheckScheduler::new(schedule.clone());
            let cluster = GpuCluster::new(2)
                .ppn(2)
                .faults(FaultSpec::seeded(ARM_SEED))
                .sanitizer(SanitizerMode::Collect)
                .recorder(rec.clone())
                .scheduler(checker.clone());
            let (end, reports) = cluster.try_run_with_reports(|env| {
                let x = VectorXfer::paper(64 << 10);
                let dev = env.gpu.malloc(x.extent());
                if env.comm.rank() == 0 {
                    fill_vector(&env.gpu, dev, &x, 11);
                    env.comm.send(dev, 1, &x.dtype(), 1, 0);
                } else {
                    env.comm.recv(dev, 1, &x.dtype(), 0, 0);
                    verify_vector(&env.gpu, dev, &x, 11);
                }
            });
            RunOutcome {
                end: end.map(|t| t.as_nanos()),
                reports,
                log: checker.log(),
            }
        }),
    }
}

/// Three ranks, two staged transfers competing for a deliberately tiny
/// vbuf pool (4 vbufs → 2 receive-side, exactly one transfer's window).
///
/// Rank 1 sends immediately; rank 2 sends after a stagger long enough
/// that, under FIFO delivery, transfer 1 has completed and returned its
/// vbufs before rank 2's RTS arrives — so the FIFO run never defers a
/// CTS and passes even with `bug_deferred_cts` set. The checker exposes
/// the bug by dropping one of transfer 1's control packets: the
/// retransmit pushes transfer 1 past the stagger, the second RTS lands
/// on a drained pool, its CTS is deferred, and — with the bug — never
/// re-granted when the vbufs come back. The starved sender's RTS
/// retransmits exhaust their budget, which the checker reports.
pub fn deferred_cts(bug_deferred_cts: bool) -> Scenario {
    Scenario {
        name: if bug_deferred_cts {
            "deferred-cts-starvation-bug"
        } else {
            "deferred-cts"
        },
        budget: Budget {
            max_divergences: 1,
            ..Budget::default_bounds()
        },
        run: Box::new(move |schedule, rec| {
            let checker = CheckScheduler::new(schedule.clone());
            let world = MpiWorld::new(3)
                .with_config(MpiConfig {
                    chunk_size: 16 << 10,
                    policy: ChunkPolicy::Fixed,
                    pool_vbufs: 4,
                    window_slots: 2,
                    bug_deferred_cts,
                    ..MpiConfig::default()
                })
                .with_faults(FaultSpec::seeded(ARM_SEED))
                .with_sanitizer(SanitizerMode::Collect)
                .with_recorder(rec.clone())
                .with_scheduler(checker.clone());
            let (end, reports) = world.try_run_with_reports(|comm| match comm.rank() {
                0 => {
                    let t = staged_dtype();
                    let b1 = HostBuf::alloc(1 << 18);
                    let b2 = HostBuf::alloc(1 << 18);
                    let r1 = comm.irecv(b1.base(), 1, &t, 1, 1u32);
                    let r2 = comm.irecv(b2.base(), 1, &t, 2, 2u32);
                    comm.waitall(vec![r1, r2]);
                    verify_staged_rows(&b1);
                    verify_staged_rows(&b2);
                }
                r => {
                    let t = staged_dtype();
                    if r == 2 {
                        // Past transfer 1's FIFO completion, well short of
                        // one retransmit timeout (200us).
                        sim_core::sleep(SimDur::from_micros(150));
                    }
                    let buf = HostBuf::from_vec((0..(1 << 18)).map(|i| (i % 249) as u8).collect());
                    comm.send(buf.base(), 1, &t, 0, r as u32);
                }
            });
            RunOutcome {
                end: end.map(|t| t.as_nanos()),
                reports,
                log: checker.log(),
            }
        }),
    }
}

/// Three ranks on two nodes (`[0, 0, 1]`), one hierarchical gather to
/// rank 0 — the node-leader **fan-in** under the checker. Rank 1's block
/// reaches its co-located leader (rank 0) over the reliable shm channel
/// (eager, no control packets), while rank 2 — its own node's leader —
/// ships its aggregated block over the wire as a direct rendezvous
/// (RTS → CTS-direct → RDMA write → FIN-direct), all of whose control
/// packets the checker may drop or delay. The retry machinery must
/// deliver the gather bit-exactly under every explored schedule.
///
/// Not part of [`protocol_scenarios`] — the committed `modelcheck.json`
/// baseline predates the hierarchical collectives and must stay
/// bit-identical; `tests/coll_check.rs` explores this one directly.
pub fn hier_fanin_3rank() -> Scenario {
    Scenario {
        name: "hier-fanin-3rank",
        budget: Budget::default_bounds(),
        run: Box::new(|schedule, rec| {
            let checker = CheckScheduler::new(schedule.clone());
            let mut cfg = MpiConfig::default();
            cfg.coll.algo = CollAlgo::Hier;
            let world = MpiWorld::new(3)
                .with_topology(Topology::from_map(vec![0, 0, 1]))
                .with_config(cfg)
                .with_faults(FaultSpec::seeded(ARM_SEED))
                .with_sanitizer(SanitizerMode::Collect)
                .with_recorder(rec.clone())
                .with_scheduler(checker.clone());
            let (end, reports) = world.try_run_with_reports(|comm| {
                let byte = Datatype::byte();
                byte.commit();
                // 16 KiB per rank: past the 8 KiB inter-node eager limit
                // (so the leader's wire leg is rendezvous) and inside the
                // 32 KiB shm eager window (so the intra-node fan-in stays
                // control-free).
                let n = 16 << 10;
                let me = comm.rank();
                let send =
                    HostBuf::from_vec((0..n).map(|i| ((i * 3 + me * 7) % 251) as u8).collect());
                let recv = HostBuf::alloc(n * 3);
                comm.gather(send.base(), recv.base(), n, &byte, 0);
                if me == 0 {
                    for r in 0..3usize {
                        let block = recv.read(r * n, n);
                        for i in [0usize, 1, n / 2, n - 1] {
                            assert_eq!(
                                block[i],
                                ((i * 3 + r * 7) % 251) as u8,
                                "gather block {r} byte {i} corrupted"
                            );
                        }
                    }
                }
            });
            RunOutcome {
                end: end.map(|t| t.as_nanos()),
                reports,
                log: checker.log(),
            }
        }),
    }
}

/// Two ranks, one NIC-offloaded rendezvous transfer of the staged-path
/// vector (RTS advertising the gather descriptor → CTS-offload carrying
/// the receiver's key and scatter descriptor → one scatter/gather RDMA
/// post → FIN-offload). Every control packet crosses the wire, so the
/// checker may drop or delay each of them; the retry machinery (RTS
/// retransmit, CTS-offload watchdog, FIN re-announce from the completed-
/// send record) must deliver the strided payload bit-exactly under every
/// explored schedule.
///
/// Not part of [`protocol_scenarios`] — the committed `modelcheck.json`
/// baseline predates the offload scheme and must stay bit-identical;
/// `tests/schemes.rs` explores this one directly.
pub fn offload_2rank() -> Scenario {
    Scenario {
        name: "offload-2rank",
        budget: Budget::default_bounds(),
        run: Box::new(|schedule, rec| {
            let checker = CheckScheduler::new(schedule.clone());
            let world = MpiWorld::new(2)
                .with_config(MpiConfig {
                    scheme: SchemeSel::Force(DataScheme::NicOffload),
                    ..MpiConfig::default()
                })
                .with_faults(FaultSpec::seeded(ARM_SEED))
                .with_sanitizer(SanitizerMode::Collect)
                .with_recorder(rec.clone())
                .with_scheduler(checker.clone());
            let (end, reports) = world.try_run_with_reports(|comm| {
                let t = staged_dtype();
                if comm.rank() == 0 {
                    let buf = HostBuf::from_vec((0..(1 << 18)).map(|i| (i % 249) as u8).collect());
                    comm.send(buf.base(), 1, &t, 1, 3);
                } else {
                    let buf = HostBuf::alloc(1 << 18);
                    let st = comm.recv(buf.base(), 1, &t, 0, 3);
                    assert_eq!(st.bytes, 64 << 10);
                    verify_staged_rows(&buf);
                }
            });
            RunOutcome {
                end: end.map(|t| t.as_nanos()),
                reports,
                log: checker.log(),
            }
        }),
    }
}

/// The four protocol scenarios that must pass exhaustively, in the order
/// they are reported.
pub fn protocol_scenarios() -> Vec<Scenario> {
    vec![
        staged_2rank(),
        direct_2rank(false),
        shm_eager_2rank(),
        d2d_2rank(),
        deferred_cts(false),
    ]
}

/// The two bug scenarios the checker must find counterexamples for.
pub fn bug_scenarios() -> Vec<Scenario> {
    vec![direct_2rank(true), deferred_cts(true)]
}

/// Re-run a serialized counterexample schedule under `scenario`,
/// returning the outcome (used by replay tests and the CLI).
pub fn replay(scenario: &Scenario, schedule_text: &str) -> Result<RunOutcome, String> {
    let schedule = crate::schedule::Schedule::parse(schedule_text)?;
    Ok(scenario.run_once(&schedule))
}

/// Convenience: look a scenario up by name.
pub fn by_name(name: &str) -> Option<Scenario> {
    protocol_scenarios()
        .into_iter()
        .chain(bug_scenarios())
        .chain(std::iter::once(hier_fanin_3rank()))
        .chain(std::iter::once(offload_2rank()))
        .find(|s| s.name == name)
}
