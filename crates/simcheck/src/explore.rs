//! The exploration driver: breadth-first enumeration of delivery
//! schedules.
//!
//! Stateless model checking: every schedule is a complete deterministic
//! re-run of the scenario under a [`CheckScheduler`](crate::CheckScheduler).
//! The explorer starts from the empty (FIFO) schedule, reads the decision
//! log the run produced, and branches — for each decision point past the
//! schedule's last divergence it generates child schedules that delay or
//! drop that packet. Requiring new divergences to come strictly after the
//! last existing one makes every schedule reachable exactly once (the
//! choice list is built left to right), so no visited-set is needed.
//!
//! Partial-order reduction: a `Delay` branch is generated only at decision
//! points whose packet was *concurrent* — another control packet to the
//! same destination was still in flight. If nothing can overtake the
//! packet, delaying it only shifts timestamps without reordering anything,
//! and the FIFO run already covers that equivalence class. `Drop` branches
//! model packet loss and are generated for every wire (non-shm) control
//! packet when the scenario allows drops.

use sim_core::san::Report;
use sim_trace::Recorder;

use crate::checker::Decision;
use crate::schedule::{Action, Schedule};

/// Bounds on the exploration.
#[derive(Copy, Clone, Debug)]
pub struct Budget {
    /// Maximum divergences (non-FIFO choices) per schedule.
    pub max_divergences: usize,
    /// Decision points at index >= this are never branched on.
    pub max_depth: usize,
    /// Hard cap on schedules run (safety net; exploration is exhaustive
    /// within the other bounds if this is not hit).
    pub max_schedules: usize,
    /// Virtual-time delay injected by a `Delay` branch, in nanoseconds.
    /// Chosen at retry-timeout scale so a delayed packet genuinely lands
    /// after its concurrent rivals.
    pub delay_ns: u64,
    /// Generate `Drop` branches (requires a fault-tolerant scenario:
    /// retry machinery armed, sanitizer collecting).
    pub allow_drops: bool,
}

impl Budget {
    /// The documented default: up to 2 divergences, 24 decision points
    /// deep, delays at 150us (past one retry timeout).
    pub fn default_bounds() -> Budget {
        Budget {
            max_divergences: 2,
            max_depth: 24,
            max_schedules: 4096,
            delay_ns: 150_000,
            allow_drops: true,
        }
    }

    /// A smaller budget for CI smoke runs.
    pub fn smoke() -> Budget {
        Budget {
            max_divergences: 1,
            max_depth: 16,
            max_schedules: 256,
            delay_ns: 150_000,
            allow_drops: true,
        }
    }
}

/// Everything one run produced.
pub struct RunOutcome {
    /// `Ok(end-of-simulation virtual time, ns)` or the panic message that
    /// aborted the run (deadlock, protocol panic, failed wait, ...).
    pub end: Result<u64, String>,
    /// Sanitizer reports collected during the run.
    pub reports: Vec<Report>,
    /// The decision log: every control packet the checker ruled on.
    pub log: Vec<Decision>,
}

impl RunOutcome {
    /// The violation this run exhibited, if any: a panic message, or the
    /// rendered sanitizer reports.
    pub fn violation(&self) -> Option<String> {
        match &self.end {
            Err(msg) => Some(msg.clone()),
            Ok(_) if !self.reports.is_empty() => Some(
                self.reports
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join("\n"),
            ),
            Ok(_) => None,
        }
    }
}

/// A checkable workload: a name, exploration bounds, and a closure that
/// runs the workload once under a given schedule.
///
/// The closure must build a **fresh** world per call — stateless model
/// checking re-runs the scenario from scratch for every schedule. The
/// [`Recorder`] parameter lets replay harnesses capture traces;
/// exploration passes [`Recorder::off`].
pub struct Scenario {
    /// Short kebab-case name (used in schedule files and reports).
    pub name: &'static str,
    /// Exploration bounds for this scenario.
    pub budget: Budget,
    /// Run the workload once under `schedule`.
    #[allow(clippy::type_complexity)]
    pub run: Box<dyn Fn(&Schedule, &Recorder) -> RunOutcome + Send + Sync>,
}

impl Scenario {
    /// Run this scenario once under `schedule` without tracing.
    pub fn run_once(&self, schedule: &Schedule) -> RunOutcome {
        (self.run)(schedule, &Recorder::off())
    }
}

/// Exploration statistics.
#[derive(Copy, Clone, Debug, Default)]
pub struct Stats {
    /// Schedules actually run.
    pub schedules: usize,
    /// Delay branches suppressed by partial-order reduction (the decision
    /// point was within bounds but its packet had no concurrent rival).
    pub pruned: usize,
    /// Child schedules generated (each is run exactly once).
    pub branched: usize,
    /// Highest decision index observed in any run.
    pub max_index: usize,
    /// True if the `max_schedules` cap cut the search short.
    pub truncated: bool,
}

/// A violating schedule, minimized and ready to replay.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The delta-minimized schedule (greedy: no single choice can be
    /// removed without losing the violation).
    pub schedule: Schedule,
    /// The schedule as first found, before minimization.
    pub original: Schedule,
    /// The violation message the minimized schedule reproduces.
    pub message: String,
    /// Schedules run before the violation was first found.
    pub runs_to_find: usize,
}

/// The result of exploring one scenario.
pub struct Verdict {
    /// Scenario name.
    pub scenario: &'static str,
    /// Exploration statistics.
    pub stats: Stats,
    /// `Some` if any schedule violated an invariant; `None` means every
    /// schedule within the budget passed.
    pub counterexample: Option<Counterexample>,
}

impl Verdict {
    /// True if no schedule within the budget violated anything.
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Child schedules of `schedule` given the decision log of its run.
///
/// Branches only at indices strictly past the schedule's last divergence
/// (canonical left-to-right construction: each schedule is generated from
/// exactly one parent) and below `max_depth`. Returns the children plus
/// the number of POR-pruned delay candidates.
fn expand(schedule: &Schedule, log: &[Decision], budget: &Budget) -> (Vec<Schedule>, usize) {
    let mut children = Vec::new();
    let mut pruned = 0;
    if schedule.divergences() >= budget.max_divergences {
        return (children, pruned);
    }
    let first = schedule.last_index().map_or(0, |i| i + 1);
    for d in log {
        if d.index < first || d.index >= budget.max_depth {
            continue;
        }
        if d.concurrent {
            children.push(schedule.with(d.index, Action::Delay(budget.delay_ns)));
        } else {
            pruned += 1;
        }
        if budget.allow_drops && !d.shm {
            children.push(schedule.with(d.index, Action::Drop));
        }
    }
    (children, pruned)
}

/// Greedy delta minimization: repeatedly try removing each choice; keep
/// any removal that still reproduces the violation. The result is
/// 1-minimal — removing any single remaining choice loses the violation.
fn minimize(scenario: &Scenario, found: &Schedule, stats: &mut Stats) -> (Schedule, String) {
    let mut current = found.clone();
    let mut message = scenario
        .run_once(&current)
        .violation()
        .expect("minimize called on a non-violating schedule");
    stats.schedules += 1;
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < current.divergences() {
            let candidate = current.without_nth(i);
            let outcome = scenario.run_once(&candidate);
            stats.schedules += 1;
            if let Some(msg) = outcome.violation() {
                current = candidate;
                message = msg;
                improved = true;
                // Do not advance i: the choice that shifted into slot i
                // has not been tried yet.
            } else {
                i += 1;
            }
        }
        if !improved {
            return (current, message);
        }
    }
}

/// Silence panic output from simulation processes for the rest of the
/// process. Exploration treats panics as verdicts — a violating schedule
/// aborts its run by design, and the default hook would print a backtrace
/// for every such run. Panics still propagate; only the printing is
/// suppressed. Idempotent.
///
/// A simulated process is recognized by its simulation context
/// ([`sim_core::in_sim`]), which covers both carriers: dedicated `sim:`
/// threads in [`ExecMode::Threads`](sim_core::ExecMode) and fibers
/// unwinding on the kernel thread in the event-driven mode. The thread-name
/// check stays as a fallback for panics raised on a sim thread outside any
/// process context (e.g. during carrier teardown).
pub fn silence_expected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let quiet = sim_core::in_sim()
                || std::thread::current()
                    .name()
                    .is_some_and(|n| n.starts_with("sim:"));
            if !quiet {
                default_hook(info);
            }
        }));
    });
}

/// Exhaustively explore `scenario` within its budget.
///
/// Runs the FIFO schedule first, then breadth-first over generated
/// children — schedules with fewer divergences run before deeper ones,
/// so the first violation found is already as shallow as the budget
/// allows. Stops at the first violation and returns it delta-minimized;
/// a `None` counterexample means every schedule within the bounds
/// passed.
pub fn explore(scenario: &Scenario) -> Verdict {
    let mut stats = Stats::default();
    let mut queue = std::collections::VecDeque::from([Schedule::empty()]);
    let mut counterexample = None;

    while let Some(schedule) = queue.pop_front() {
        if stats.schedules >= scenario.budget.max_schedules {
            stats.truncated = true;
            break;
        }
        let outcome = scenario.run_once(&schedule);
        stats.schedules += 1;
        if let Some(d) = outcome.log.last() {
            stats.max_index = stats.max_index.max(d.index);
        }
        if outcome.violation().is_some() {
            let runs_to_find = stats.schedules;
            let (minimized, message) = minimize(scenario, &schedule, &mut stats);
            counterexample = Some(Counterexample {
                schedule: minimized,
                original: schedule,
                message,
                runs_to_find,
            });
            break;
        }
        let (children, pruned) = expand(&schedule, &outcome.log, &scenario.budget);
        stats.pruned += pruned;
        stats.branched += children.len();
        queue.extend(children);
    }

    Verdict {
        scenario: scenario.name,
        stats,
        counterexample,
    }
}
