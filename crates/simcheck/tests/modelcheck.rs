//! Model-checker acceptance tests: the current protocol passes
//! exhaustively at the documented bounds; both reintroduced bugs are
//! rediscovered with minimized, replayable counterexamples; replay is
//! byte-deterministic.

use simcheck::{explore, scenarios, silence_expected_panics, Schedule};

#[test]
fn protocol_scenarios_pass_exhaustively() {
    silence_expected_panics();
    for scenario in scenarios::protocol_scenarios() {
        let v = explore(&scenario);
        assert!(
            !v.stats.truncated,
            "{}: exploration hit the schedule cap — not exhaustive",
            v.scenario
        );
        if let Some(c) = &v.counterexample {
            panic!(
                "{}: counterexample {} (from {}): {}",
                v.scenario, c.schedule, c.original, c.message
            );
        }
        assert!(v.stats.schedules >= 1, "{}: no runs", v.scenario);
    }
}

#[test]
fn por_collapses_sequential_protocols() {
    silence_expected_panics();
    // The D2D handshake is strictly sequential: no two control packets
    // are ever concurrently in flight, all travel the reliable shm
    // channel (no drop branches), so POR collapses the exploration to
    // the single FIFO schedule.
    let v = explore(&scenarios::d2d_2rank());
    assert!(v.passed());
    assert_eq!(v.stats.schedules, 1, "D2D should be fully POR-pruned");
    assert!(v.stats.pruned > 0, "POR never fired on D2D");

    // The staged pipeline does have concurrency (chunk FINs and CREDITs
    // in flight together), so it both branches and prunes.
    let v = explore(&scenarios::staged_2rank());
    assert!(v.passed());
    assert!(v.stats.branched > 0, "staged never branched");
    assert!(v.stats.pruned > 0, "POR never fired on staged");
}

#[test]
fn finds_finalize_quiesce_bug() {
    silence_expected_panics();
    let scenario = scenarios::direct_2rank(true);
    let v = explore(&scenario);
    let c = v
        .counterexample
        .expect("checker failed to find the finalize-quiesce bug");
    assert!(
        c.message.contains("retries exhausted"),
        "unexpected violation: {}",
        c.message
    );
    assert!(
        c.schedule.divergences() <= 2,
        "counterexample not minimal: {}",
        c.schedule
    );
    // Serialize, parse back, replay: same violation.
    let text = c.schedule.to_text(scenario.name);
    let replayed = scenarios::replay(&scenario, &text).unwrap();
    assert_eq!(
        replayed.violation().as_deref(),
        Some(c.message.as_str()),
        "replayed counterexample did not reproduce"
    );
}

#[test]
fn finds_deferred_cts_starvation_bug() {
    silence_expected_panics();
    let scenario = scenarios::deferred_cts(true);
    let v = explore(&scenario);
    let c = v
        .counterexample
        .expect("checker failed to find the deferred-CTS starvation bug");
    assert_eq!(
        c.schedule.divergences(),
        1,
        "starvation needs exactly one dropped packet: {}",
        c.schedule
    );
    assert!(
        c.message.contains("rts") && c.message.contains("retries exhausted"),
        "unexpected violation: {}",
        c.message
    );
    let text = c.schedule.to_text(scenario.name);
    let replayed = scenarios::replay(&scenario, &text).unwrap();
    assert_eq!(replayed.violation().as_deref(), Some(c.message.as_str()));
}

#[test]
fn counterexample_replay_is_byte_deterministic() {
    silence_expected_panics();
    let scenario = scenarios::direct_2rank(true);
    let v = explore(&scenario);
    let c = v.counterexample.expect("no counterexample to replay");

    let replay = || {
        let rec = sim_trace::Recorder::new();
        let outcome = (scenario.run)(&c.schedule, &rec);
        let reports: Vec<String> = outcome.reports.iter().map(|r| r.to_string()).collect();
        (
            outcome.end,
            reports.join("\n"),
            sim_trace::chrome_trace(&rec),
        )
    };
    let (end1, reports1, trace1) = replay();
    let (end2, reports2, trace2) = replay();
    assert_eq!(end1, end2, "virtual end time differs between replays");
    assert_eq!(
        reports1, reports2,
        "sanitizer reports differ between replays"
    );
    assert_eq!(trace1, trace2, "virtual-time traces differ between replays");
}

#[test]
fn fifo_schedule_matches_unchecked_run() {
    silence_expected_panics();
    // The empty schedule under the checker must be the exact run the
    // scenario does without any checker: same end time, no reports.
    let scenario = scenarios::staged_2rank();
    let a = scenario.run_once(&Schedule::empty());
    let b = scenario.run_once(&Schedule::empty());
    assert_eq!(a.end, b.end);
    assert!(a.end.is_ok());
    assert!(a.reports.is_empty(), "FIFO run produced reports");
    assert!(!a.log.is_empty(), "staged run recorded no decision points");
}
