//! Model-checking the hierarchical collective control plane: the 3-rank
//! leader fan-in scenario ([`scenarios::hier_fanin_3rank`]) must pass
//! exhaustively — every drop/delay schedule of the leader's rendezvous
//! control packets recovers and delivers the gathered bytes intact.

use simcheck::{explore, scenarios, silence_expected_panics, Schedule};

#[test]
fn hier_fanin_passes_exhaustively() {
    silence_expected_panics();
    let v = explore(&scenarios::hier_fanin_3rank());
    assert!(
        !v.stats.truncated,
        "leader fan-in exploration hit the schedule cap — not exhaustive"
    );
    if let Some(c) = &v.counterexample {
        panic!(
            "leader fan-in violated under schedule {} (from {}): {}",
            c.schedule, c.original, c.message
        );
    }
    // The wire leg is a rendezvous with retry branches: the checker must
    // actually have had choices to explore, not a single FIFO run.
    assert!(
        v.stats.schedules > 1,
        "leader fan-in explored only the FIFO schedule — no decision points"
    );
}

#[test]
fn hier_fanin_fifo_run_is_clean_and_deterministic() {
    silence_expected_panics();
    let scenario = scenarios::hier_fanin_3rank();
    let a = scenario.run_once(&Schedule::empty());
    let b = scenario.run_once(&Schedule::empty());
    assert_eq!(a.end, b.end, "FIFO replay diverged in virtual time");
    assert!(a.end.is_ok(), "FIFO run failed: {:?}", a.end);
    assert!(a.reports.is_empty(), "FIFO run produced sanitizer reports");
    assert!(
        !a.log.is_empty(),
        "the leader's wire rendezvous recorded no decision points"
    );
}

#[test]
fn hier_fanin_is_replayable_by_name() {
    silence_expected_panics();
    let s = scenarios::by_name("hier-fanin-3rank").expect("scenario not registered");
    let text = Schedule::empty().to_text(s.name);
    let outcome = scenarios::replay(&s, &text).expect("replay failed to parse");
    assert!(outcome.end.is_ok());
}
