//! Cross-carrier identity: the event-driven kernel ([`ExecMode::Event`],
//! fibers on one kernel thread) and the legacy all-threads kernel
//! ([`ExecMode::Threads`], one OS thread per rank) must be two carriers
//! of the *same* simulation. Every virtual time, every trace event, every
//! model-checking decision — and the kernel's own scheduling-grant
//! sequence — must be byte-identical between the two.
//!
//! The suite covers the four result families the repo commits:
//! pipeline-style staged transfers (`BENCH_pipeline.json`), recorder
//! traces (`trace_report.json`), fault-injection runs
//! (`fault_campaign.json`) and model-check exploration
//! (`modelcheck.json`).

use std::sync::Arc;

use hostmem::HostBuf;
use mpi_sim::{ChunkPolicy, Datatype, MpiConfig, MpiWorld};
use mv2_gpu_nc::baselines::{fill_vector, verify_vector, VectorXfer};
use mv2_gpu_nc::{FaultSpec, GpuCluster, WakeTraceSink};
use sim_core::lock::Mutex;
use sim_core::{ExecMode, SanitizerMode, SimTime};
use sim_trace::Recorder;
use simcheck::{explore, Budget, CheckScheduler, RunOutcome, Scenario, Schedule};

/// A staged (rendezvous-path) vector transfer between two GPU ranks:
/// rank 0 fills and sends, rank 1 receives and verifies, both record
/// per-iteration virtual latencies. Returns (per-iteration latencies in
/// ns, virtual end-of-job time).
fn staged_vector_run(
    mode: ExecMode,
    sink: Option<WakeTraceSink>,
    faults: Option<FaultSpec>,
    recorder: Option<Recorder>,
) -> (Vec<u64>, SimTime) {
    let lat: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let out = Arc::clone(&lat);
    let mut cluster = GpuCluster::new(2).exec(mode);
    if let Some(s) = sink {
        cluster = cluster.wake_trace(s);
    }
    if let Some(f) = faults {
        cluster = cluster.faults(f);
    }
    if let Some(r) = recorder {
        cluster = cluster.recorder(r);
    }
    let end = cluster.run(move |env| {
        let x = VectorXfer::paper(256 << 10);
        let dt = x.dtype();
        let dev = env.gpu.malloc(x.extent());
        for it in 0..3u32 {
            env.comm.barrier();
            let t0 = sim_core::now();
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, it as u8);
                env.comm.send(dev, 1, &dt, 1, it);
            } else {
                env.comm.recv(dev, 1, &dt, 0, it);
                verify_vector(&env.gpu, dev, &x, it as u8);
                out.lock().push((sim_core::now() - t0).as_nanos());
            }
        }
        env.gpu.free(dev);
    });
    let v = lat.lock().clone();
    (v, end)
}

/// Pipeline case: staged transfers produce identical per-iteration
/// virtual latencies, end times and scheduling-grant traces across
/// carriers.
#[test]
fn pipeline_transfer_identity() {
    let ev_sink: WakeTraceSink = Arc::default();
    let th_sink: WakeTraceSink = Arc::default();
    let (ev_lat, ev_end) =
        staged_vector_run(ExecMode::Event, Some(Arc::clone(&ev_sink)), None, None);
    let (th_lat, th_end) =
        staged_vector_run(ExecMode::Threads, Some(Arc::clone(&th_sink)), None, None);

    assert_eq!(ev_lat, th_lat, "per-iteration latencies diverged");
    assert_eq!(ev_end, th_end, "virtual end time diverged");
    let ev = ev_sink.lock().unwrap();
    let th = th_sink.lock().unwrap();
    assert!(!ev.is_empty(), "no scheduling grants recorded");
    assert_eq!(*ev, *th, "wake traces diverged across carriers");
}

/// Trace case: with a live recorder attached, both carriers emit the
/// same lanes and the same event stream (spans, instants, gauges — all
/// virtual-time stamped).
#[test]
fn trace_identity() {
    let run = |mode| {
        let rec = Recorder::new();
        let (lat, end) = staged_vector_run(mode, None, None, Some(rec.clone()));
        (lat, end, rec)
    };
    let (ev_lat, ev_end, ev_rec) = run(ExecMode::Event);
    let (th_lat, th_end, th_rec) = run(ExecMode::Threads);

    assert_eq!(ev_lat, th_lat, "latencies diverged");
    assert_eq!(ev_end, th_end, "end time diverged");
    assert_eq!(
        format!("{:?}", ev_rec.lanes()),
        format!("{:?}", th_rec.lanes()),
        "lane registrations diverged"
    );
    let ev_events = ev_rec.events();
    let th_events = th_rec.events();
    assert!(!ev_events.is_empty(), "recorder captured nothing");
    assert_eq!(ev_events.len(), th_events.len(), "event counts diverged");
    for (i, (a, b)) in ev_events.iter().zip(th_events.iter()).enumerate() {
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "trace event {i} diverged"
        );
    }
}

/// Fault-injection case: seeded control-packet loss/delay and RDMA error
/// CQEs drive the retry machinery; recovery must replay identically —
/// same virtual times, same grant sequence, same delivered bytes (the
/// run verifies data in-line).
#[test]
fn fault_injection_identity() {
    let spec = FaultSpec {
        ctrl_drop: 0.05,
        ctrl_delay: 0.10,
        delay_ns: 30_000,
        rdma_error: 0.02,
        ..FaultSpec::seeded(7)
    };
    let ev_sink: WakeTraceSink = Arc::default();
    let th_sink: WakeTraceSink = Arc::default();
    let (ev_lat, ev_end) = staged_vector_run(
        ExecMode::Event,
        Some(Arc::clone(&ev_sink)),
        Some(spec.clone()),
        None,
    );
    let (th_lat, th_end) = staged_vector_run(
        ExecMode::Threads,
        Some(Arc::clone(&th_sink)),
        Some(spec),
        None,
    );

    assert_eq!(ev_lat, th_lat, "faulty-run latencies diverged");
    assert_eq!(ev_end, th_end, "faulty-run end time diverged");
    let ev = ev_sink.lock().unwrap();
    let th = th_sink.lock().unwrap();
    assert_eq!(*ev, *th, "faulty-run wake traces diverged");
}

/// One 256-rank hierarchical collective job under `mode`: a 64-node
/// (ppn = 4) layout chains barrier → allreduce → alltoallv with the
/// node-leader algorithms. Returns the virtual end time, every rank's
/// received bytes, and the trace event stream.
fn collective_256rank_run(mode: ExecMode) -> (SimTime, Vec<Vec<u8>>, Vec<String>) {
    use std::collections::BTreeMap;

    let n = 256usize;
    let digests: Arc<Mutex<BTreeMap<usize, Vec<u8>>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = Arc::clone(&digests);
    let rec = Recorder::new();
    let mut cfg = MpiConfig {
        ppn: 4,
        ..MpiConfig::default()
    };
    cfg.coll.algo = mpi_sim::CollAlgo::Hier;
    let end = MpiWorld::new(n)
        .with_config(cfg)
        .with_exec(mode)
        .with_recorder(rec.clone())
        .run(move |comm| {
            let me = comm.rank();
            let f32t = Datatype::float();
            f32t.commit();
            let term = |r: usize, k: usize| ((r * 13 + k * 7) % 17) as f32 - 8.0;
            let mut digest: Vec<u8> = Vec::new();

            comm.barrier();

            // Allreduce: 256 f32, summed through the leader fan-in tree.
            let rn = 256usize;
            let vals: Vec<f32> = (0..rn).map(|k| term(me, k)).collect();
            let send = HostBuf::from_vec(hostmem::scalars_to_bytes(&vals));
            let recv = HostBuf::alloc(rn * 4);
            comm.allreduce(send.base(), recv.base(), rn, &f32t, mpi_sim::ReduceOp::Sum);
            let got = hostmem::bytes_to_scalars::<f32>(&recv.read(0, rn * 4));
            let want: f32 = (0..n).map(|r| term(r, 0)).sum();
            assert_eq!(got[0], want, "allreduce wrong on rank {me}");
            digest.extend(recv.read(0, rn * 4));

            // Alltoallv: 4 f32 per pair, leader-aggregated wire messages.
            let cnt = 4usize;
            let counts = vec![cnt; n];
            let displs: Vec<usize> = (0..n).map(|j| j * cnt * 4).collect();
            let tvals: Vec<f32> = (0..n * cnt).map(|k| term(me, k)).collect();
            let tsend = HostBuf::from_vec(hostmem::scalars_to_bytes(&tvals));
            let trecv = HostBuf::alloc(n * cnt * 4);
            comm.alltoallv(
                tsend.base(),
                &counts,
                &displs,
                &f32t,
                trecv.base(),
                &counts,
                &displs,
                &f32t,
            );
            digest.extend(trecv.read(0, n * cnt * 4));

            sink.lock().insert(me, digest);
        });
    let map = Arc::try_unwrap(digests)
        .map(|m| m.into_inner())
        .unwrap_or_else(|a| a.lock().clone());
    assert_eq!(map.len(), n, "some rank never reported");
    let events = rec.events().iter().map(|e| format!("{e:?}")).collect();
    (end, map.into_values().collect(), events)
}

/// Collectives case at scale: a 256-rank hierarchical job must be two
/// carriers of the same simulation — identical virtual end time,
/// identical delivered bytes on every rank, identical trace streams.
#[test]
fn collective_identity_at_256_ranks() {
    let (ev_end, ev_data, ev_events) = collective_256rank_run(ExecMode::Event);
    let (th_end, th_data, th_events) = collective_256rank_run(ExecMode::Threads);
    assert_eq!(ev_end, th_end, "256-rank collective end time diverged");
    assert_eq!(ev_data, th_data, "256-rank collective data diverged");
    assert!(!ev_events.is_empty(), "recorder captured nothing");
    assert_eq!(
        ev_events.len(),
        th_events.len(),
        "trace event counts diverged"
    );
    for (i, (a, b)) in ev_events.iter().zip(th_events.iter()).enumerate() {
        assert_eq!(a, b, "trace event {i} diverged across carriers");
    }
}

/// One model-check workload run under `mode`: a staged 64 KiB vector
/// transfer over a checker-scheduled, retry-armed fabric (the same shape
/// as `scenarios::staged_2rank`, with the carrier pinned explicitly).
fn checked_staged_run(mode: ExecMode, schedule: &Schedule) -> RunOutcome {
    let checker = CheckScheduler::new(schedule.clone());
    let world = MpiWorld::new(2)
        .with_exec(mode)
        .with_config(MpiConfig {
            chunk_size: 16 << 10,
            policy: ChunkPolicy::Fixed,
            ..MpiConfig::default()
        })
        .with_faults(FaultSpec::seeded(1))
        .with_sanitizer(SanitizerMode::Collect)
        .with_scheduler(checker.clone());
    let (end, reports) = world.try_run_with_reports(|comm| {
        let t = Datatype::vector(1 << 14, 1, 4, &Datatype::float());
        t.commit();
        if comm.rank() == 0 {
            let buf = HostBuf::from_vec((0..(1 << 18)).map(|i| (i % 249) as u8).collect());
            comm.send(buf.base(), 1, &t, 1, 3);
        } else {
            let buf = HostBuf::alloc(1 << 18);
            let st = comm.recv(buf.base(), 1, &t, 0, 3);
            assert_eq!(st.bytes, 64 << 10);
            for r in [0usize, 1, 1000, 16383] {
                let o = r * 16;
                let expect: Vec<u8> = (o..o + 4).map(|i| (i % 249) as u8).collect();
                assert_eq!(buf.read(o, 4), expect, "staged row {r} corrupted");
            }
        }
    });
    RunOutcome {
        end: end.map(|t| t.as_nanos()),
        reports,
        log: checker.log(),
    }
}

/// Modelcheck case: exploration is a pure function of the schedule, so
/// the whole breadth-first search — schedule counts, POR pruning,
/// branch fan-out, deepest decision index — must match across carriers,
/// as must the FIFO run's decision log and end time.
#[test]
fn modelcheck_identity() {
    // The FIFO (empty-schedule) run, compared decision-by-decision.
    let fifo = Schedule::empty();
    let ev = checked_staged_run(ExecMode::Event, &fifo);
    let th = checked_staged_run(ExecMode::Threads, &fifo);
    assert_eq!(ev.end, th.end, "FIFO end time diverged");
    assert!(
        ev.violation().is_none(),
        "FIFO run violated: {ev:?}",
        ev = ev.violation()
    );
    assert!(!ev.log.is_empty(), "checker ruled on no packets");
    assert_eq!(ev.log.len(), th.log.len(), "decision counts diverged");
    for (i, (a, b)) in ev.log.iter().zip(th.log.iter()).enumerate() {
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "decision {i} diverged across carriers"
        );
    }

    // A bounded exploration from each carrier: identical search trees.
    simcheck::silence_expected_panics();
    let scenario = |mode: ExecMode| Scenario {
        name: "event-identity-staged",
        budget: Budget::smoke(),
        run: Box::new(move |schedule, _rec| checked_staged_run(mode, schedule)),
    };
    let ev = explore(&scenario(ExecMode::Event));
    let th = explore(&scenario(ExecMode::Threads));
    assert!(ev.passed(), "event-carrier exploration found a violation");
    assert!(th.passed(), "thread-carrier exploration found a violation");
    assert_eq!(
        ev.stats.schedules, th.stats.schedules,
        "schedule counts diverged"
    );
    assert_eq!(ev.stats.pruned, th.stats.pruned, "POR pruning diverged");
    assert_eq!(
        ev.stats.branched, th.stats.branched,
        "branch fan-out diverged"
    );
    assert_eq!(
        ev.stats.max_index, th.stats.max_index,
        "max decision index diverged"
    );
    assert!(
        ev.stats.schedules > 1,
        "exploration degenerate: one schedule"
    );
}
