//! Scratch probe for tuning exploration budgets (not shipped as a test).

use simcheck::{explore, scenarios};

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    let all = scenarios::protocol_scenarios()
        .into_iter()
        .chain(scenarios::bug_scenarios());
    for s in all {
        if !names.is_empty() && !names.iter().any(|n| n == s.name) {
            continue;
        }
        let t0 = std::time::Instant::now();
        let v = explore(&s);
        let dt = t0.elapsed();
        println!(
            "{}: schedules={} branched={} pruned={} max_index={} truncated={} ({:.2?})",
            v.scenario,
            v.stats.schedules,
            v.stats.branched,
            v.stats.pruned,
            v.stats.max_index,
            v.stats.truncated,
            dt
        );
        match &v.counterexample {
            None => println!("  PASS (exhaustive within budget)"),
            Some(c) => {
                println!("  VIOLATION after {} runs", c.runs_to_find);
                println!("  original : {}", c.original);
                println!("  minimized: {}", c.schedule);
                println!("  message  : {}", c.message.lines().next().unwrap_or(""));
            }
        }
    }
}
