//! Call-count instrumentation.
//!
//! The paper's Table I compares the two Stencil2D variants by the number of
//! CUDA/MPI calls in their main loops. Simulated APIs record each call in a
//! [`CallCounters`] so the benchmark harness can regenerate that table from
//! actual executions instead of hand-counted numbers.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

use crate::lock::Mutex;

/// Named call counters. Clones share the same underlying counts.
#[derive(Clone, Default)]
pub struct CallCounters {
    counts: Arc<Mutex<BTreeMap<&'static str, u64>>>,
}

impl CallCounters {
    /// New, empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one call of `api`.
    pub fn record(&self, api: &'static str) {
        *self.counts.lock().entry(api).or_insert(0) += 1;
    }

    /// Add `n` to the counter `api` — for byte/volume accumulators rather
    /// than call counts.
    pub fn add(&self, api: &'static str, n: u64) {
        *self.counts.lock().entry(api).or_insert(0) += n;
    }

    /// Current count for `api` (zero if never recorded).
    pub fn get(&self, api: &str) -> u64 {
        self.counts.lock().get(api).copied().unwrap_or(0)
    }

    /// Snapshot of all counters.
    pub fn snapshot(&self) -> BTreeMap<&'static str, u64> {
        self.counts.lock().clone()
    }

    /// Reset every counter to zero.
    pub fn reset(&self) {
        self.counts.lock().clear();
    }

    /// Whether `other` is a clone of this counter set (shares the same
    /// underlying counts). Registries use this to tell a harmless repeat
    /// registration from a genuine name collision between two objects.
    pub fn same_counters(&self, other: &CallCounters) -> bool {
        Arc::ptr_eq(&self.counts, &other.counts)
    }

    /// Difference `self - baseline`, per counter (useful for measuring one
    /// loop iteration: snapshot before, diff after).
    pub fn delta(&self, baseline: &BTreeMap<&'static str, u64>) -> BTreeMap<&'static str, u64> {
        let cur = self.snapshot();
        let mut out = BTreeMap::new();
        for (k, v) in cur {
            let base = baseline.get(k).copied().unwrap_or(0);
            if v > base {
                out.insert(k, v - base);
            }
        }
        out
    }
}

/// Process-global counters for library-internal events that are not tied to
/// one simulated object (e.g. the datatype plan cache's hits / misses /
/// evictions). Benchmarks snapshot/delta this around a workload; tests that
/// need isolation from concurrently running workloads should prefer the
/// per-object statistics instead.
pub fn global() -> &'static CallCounters {
    static GLOBAL: OnceLock<CallCounters> = OnceLock::new();
    GLOBAL.get_or_init(CallCounters::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_get() {
        let c = CallCounters::new();
        assert_eq!(c.get("cudaMemcpy"), 0);
        c.record("cudaMemcpy");
        c.record("cudaMemcpy");
        c.record("MPI_Send");
        assert_eq!(c.get("cudaMemcpy"), 2);
        assert_eq!(c.get("MPI_Send"), 1);
    }

    #[test]
    fn clones_share_counts() {
        let a = CallCounters::new();
        let b = a.clone();
        b.record("x");
        assert_eq!(a.get("x"), 1);
    }

    #[test]
    fn delta_measures_a_window() {
        let c = CallCounters::new();
        c.record("a");
        let base = c.snapshot();
        c.record("a");
        c.record("b");
        let d = c.delta(&base);
        assert_eq!(d.get("a"), Some(&1));
        assert_eq!(d.get("b"), Some(&1));
    }

    #[test]
    fn reset_clears() {
        let c = CallCounters::new();
        c.record("a");
        c.reset();
        assert_eq!(c.get("a"), 0);
        assert!(c.snapshot().is_empty());
    }
}
