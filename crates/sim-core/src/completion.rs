//! [`Completion`]: a one-shot event with a virtual-time completion instant.
//!
//! Completions model asynchronous hardware operations (a DMA copy, an RDMA
//! write): the initiator computes the operation's finish time when it is
//! enqueued and attaches it to the returned completion. Consumers can
//! [`poll`](Completion::poll) it non-blockingly (like `cudaStreamQuery`) or
//! [`wait`](Completion::wait) on it (like `cudaStreamSynchronize`).

use std::sync::Arc;

use crate::lock::Mutex;

use crate::component::Waker;
use crate::kernel::{self, ProcHandle};
use crate::san;
use crate::time::SimTime;

#[derive(Default)]
struct CompState {
    /// When the modeled operation began occupying its resource, if the
    /// initiator knows it (tracing only; never consulted for timing).
    started_at: Option<SimTime>,
    /// When the event completes. `None` while the finish time is unknown.
    done_at: Option<SimTime>,
    /// The operation finished unsuccessfully (an error CQE). Consumers that
    /// never check [`Completion::is_error`] see the same timing either way.
    error: bool,
    /// Processes parked waiting for a finish time to be assigned.
    waiters: Vec<ProcHandle>,
    /// Stackless consumers: woken at the finish instant once it is known.
    components: Vec<Waker>,
    /// Sanitizer: async operations this completion synchronizes with. A
    /// successful wait/poll acquires them for the caller.
    ops: Vec<san::OpId>,
}

/// A cloneable one-shot virtual-time event.
///
/// All methods must be called from inside a simulation process.
#[derive(Clone, Default)]
pub struct Completion {
    inner: Arc<Mutex<CompState>>,
}

impl Completion {
    /// A completion whose finish time is not yet known; complete it later
    /// with [`complete_at`](Completion::complete_at).
    pub fn pending() -> Self {
        Self::default()
    }

    /// A completion that finishes at the given instant.
    pub fn ready_at(t: SimTime) -> Self {
        Completion {
            inner: Arc::new(Mutex::new(CompState {
                started_at: None,
                done_at: Some(t),
                error: false,
                waiters: Vec::new(),
                components: Vec::new(),
                ops: Vec::new(),
            })),
        }
    }

    /// Like [`ready_at`](Self::ready_at), but also recording when the
    /// modeled operation *started* occupying its resource. The start instant
    /// carries no timing semantics — `poll`/`wait` behave exactly as for
    /// `ready_at(end)` — it exists so tracing layers can reconstruct the
    /// operation's exact busy interval from the completion alone.
    pub fn ready_between(start: SimTime, end: SimTime) -> Self {
        let c = Self::ready_at(end);
        c.inner.lock().started_at = Some(start);
        c
    }

    /// [`failed_at`](Self::failed_at) with a recorded start instant (see
    /// [`ready_between`](Self::ready_between)).
    pub fn failed_between(start: SimTime, end: SimTime) -> Self {
        let c = Self::ready_between(start, end);
        c.inner.lock().error = true;
        c
    }

    /// A completion that finishes at `t` *with an error status* — the
    /// simulator's equivalent of an error CQE (`IBV_WC_RETRY_EXC_ERR` and
    /// friends). Timing behaves exactly like [`ready_at`](Self::ready_at);
    /// protocol layers query [`is_error`](Self::is_error) after completion
    /// to decide whether the operation must be retried.
    pub fn failed_at(t: SimTime) -> Self {
        let c = Self::ready_at(t);
        c.inner.lock().error = true;
        c
    }

    /// A completion that is already done.
    pub fn ready() -> Self {
        Self::ready_at(SimTime::ZERO)
    }

    /// Assign the finish time. Waiters parked on this completion are woken at
    /// `max(t, now)`. Panics if the completion already has a finish time.
    pub fn complete_at(&self, t: SimTime) {
        let (waiters, components) = {
            let st = &mut *self.inner.lock();
            assert!(st.done_at.is_none(), "Completion::complete_at called twice");
            st.done_at = Some(t);
            (
                std::mem::take(&mut st.waiters),
                std::mem::take(&mut st.components),
            )
        };
        if !waiters.is_empty() {
            let wake_at = t.max(kernel::now());
            // ProcHandle::unpark is context-free, so the closure can run on
            // the kernel thread.
            kernel::schedule_at(wake_at, move || {
                for h in waiters {
                    h.unpark();
                }
            });
        }
        for w in components {
            w.wake_at(t);
        }
    }

    /// Subscribe a stackless component: it receives a coalesced wake at the
    /// finish instant. If the finish time is already assigned the wake is
    /// issued immediately (for that instant, which may be in the past — the
    /// kernel clamps to now). Timing of waiters and pollers is unaffected.
    pub fn notify_component(&self, w: &Waker) {
        let done = {
            let mut st = self.inner.lock();
            if st.done_at.is_none() {
                st.components.push(w.clone());
            }
            st.done_at
        };
        if let Some(t) = done {
            w.wake_at(t);
        }
    }

    /// Finish time, if assigned.
    pub fn done_at(&self) -> Option<SimTime> {
        self.inner.lock().done_at
    }

    /// Start instant of the modeled operation, if the initiator recorded one
    /// (see [`ready_between`](Self::ready_between)).
    pub fn started_at(&self) -> Option<SimTime> {
        self.inner.lock().started_at
    }

    /// Whether the operation completed with an error status (an error CQE).
    /// Meaningful once the completion is done; pending completions and
    /// successful ones return `false`.
    pub fn is_error(&self) -> bool {
        self.inner.lock().error
    }

    /// Sanitizer: attach asynchronous operation ids to this completion. A
    /// successful [`wait`](Completion::wait) or [`poll`](Completion::poll)
    /// then acquires them (creates a happens-before edge) for the caller.
    pub fn attach_ops(&self, ops: &[san::OpId]) {
        if !ops.is_empty() {
            self.inner.lock().ops.extend_from_slice(ops);
        }
    }

    /// Sanitizer: the operation ids attached to this completion.
    pub fn attached_ops(&self) -> Vec<san::OpId> {
        self.inner.lock().ops.clone()
    }

    fn san_acquire(&self) {
        if san::enabled() {
            let ops = self.inner.lock().ops.clone();
            san::acquire_ops(&ops);
        }
    }

    /// Non-blocking check: has this completion finished *by the current
    /// virtual time*? A `true` result is a synchronization point (the
    /// caller acquires the completion's attached operations).
    pub fn poll(&self) -> bool {
        let done = self
            .inner
            .lock()
            .done_at
            .is_some_and(|t| t <= kernel::now());
        if done {
            self.san_acquire();
        }
        done
    }

    /// Block until the completion has finished, advancing virtual time as
    /// needed. Returns the finish instant.
    pub fn wait(&self) -> SimTime {
        loop {
            let done_at = self.inner.lock().done_at;
            match done_at {
                Some(t) => {
                    if kernel::now() < t {
                        kernel::sleep_until(t);
                    }
                    self.san_acquire();
                    return t;
                }
                None => {
                    if san::enabled() {
                        let ops = self.inner.lock().ops.clone();
                        san::note_blocked(|| san::describe_ops(&ops));
                    }
                    self.inner.lock().waiters.push(kernel::current_handle());
                    kernel::park("completion wait");
                    san::clear_blocked();
                }
            }
        }
    }

    /// A completion that finishes when every input has finished (the latest
    /// `done_at`). All inputs must already have assigned finish times.
    pub fn join_all<'a>(comps: impl IntoIterator<Item = &'a Completion>) -> Completion {
        let mut latest = SimTime::ZERO;
        let mut ops = Vec::new();
        for c in comps {
            let t = c
                .done_at()
                .expect("Completion::join_all requires assigned finish times");
            latest = latest.max(t);
            ops.extend(c.inner.lock().ops.iter().copied());
        }
        let out = Completion::ready_at(latest);
        out.attach_ops(&ops);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{now, sleep, Sim};
    use crate::time::SimDur;

    #[test]
    fn ready_at_polls_with_clock() {
        let sim = Sim::new();
        sim.spawn("p", || {
            let c = Completion::ready_at(now() + SimDur::from_micros(5));
            assert!(!c.poll());
            sleep(SimDur::from_micros(4));
            assert!(!c.poll());
            sleep(SimDur::from_micros(1));
            assert!(c.poll());
        });
        sim.run();
    }

    #[test]
    fn wait_advances_to_finish_time() {
        let sim = Sim::new();
        sim.spawn("p", || {
            let c = Completion::ready_at(now() + SimDur::from_micros(42));
            let t = c.wait();
            assert_eq!(now(), t);
            assert_eq!(t, SimTime::from_nanos(42_000));
            assert_eq!(c.wait(), t); // waiting again returns immediately
        });
        sim.run();
    }

    #[test]
    fn pending_completion_wakes_parked_waiter() {
        let sim = Sim::new();
        let c = Completion::pending();
        {
            let c = c.clone();
            sim.spawn("waiter", move || {
                let t = c.wait();
                assert_eq!(t, SimTime::from_nanos(30_000));
                assert_eq!(now(), t);
            });
        }
        {
            let c = c.clone();
            sim.spawn("completer", move || {
                sleep(SimDur::from_micros(10));
                c.complete_at(now() + SimDur::from_micros(20));
            });
        }
        sim.run();
    }

    #[test]
    fn complete_in_past_wakes_at_now() {
        let sim = Sim::new();
        let c = Completion::pending();
        {
            let c = c.clone();
            sim.spawn("waiter", move || {
                c.wait();
                assert_eq!(now(), SimTime::from_nanos(10_000));
            });
        }
        {
            let c = c.clone();
            sim.spawn("completer", move || {
                sleep(SimDur::from_micros(10));
                c.complete_at(SimTime::ZERO); // finish time in the past
            });
        }
        sim.run();
    }

    #[test]
    #[should_panic(expected = "called twice")]
    fn double_complete_panics() {
        let sim = Sim::new();
        sim.spawn("p", || {
            let c = Completion::pending();
            c.complete_at(SimTime::ZERO);
            c.complete_at(SimTime::ZERO);
        });
        sim.run();
    }

    #[test]
    fn error_status_rides_the_completion() {
        let sim = Sim::new();
        sim.spawn("p", || {
            let ok = Completion::ready_at(now() + SimDur::from_micros(1));
            let bad = Completion::failed_at(now() + SimDur::from_micros(1));
            assert!(!ok.is_error());
            assert!(bad.is_error(), "error status must be queryable before done");
            // Identical timing semantics: both finish at the same instant.
            assert_eq!(ok.wait(), bad.wait());
            assert!(bad.is_error() && !ok.is_error());
        });
        sim.run();
    }

    #[test]
    fn ready_between_records_start_without_changing_timing() {
        let sim = Sim::new();
        sim.spawn("p", || {
            let s = SimTime::from_nanos(3_000);
            let e = SimTime::from_nanos(9_000);
            let a = Completion::ready_at(e);
            let b = Completion::ready_between(s, e);
            assert_eq!(a.started_at(), None);
            assert_eq!(b.started_at(), Some(s));
            assert_eq!(a.done_at(), b.done_at());
            assert_eq!(a.wait(), b.wait());
            let bad = Completion::failed_between(s, e);
            assert!(bad.is_error());
            assert_eq!(bad.started_at(), Some(s));
            assert_eq!(bad.done_at(), Some(e));
        });
        sim.run();
    }

    #[test]
    fn join_all_takes_latest() {
        let sim = Sim::new();
        sim.spawn("p", || {
            let a = Completion::ready_at(SimTime::from_nanos(5));
            let b = Completion::ready_at(SimTime::from_nanos(9));
            let c = Completion::join_all([&a, &b]);
            assert_eq!(c.done_at(), Some(SimTime::from_nanos(9)));
        });
        sim.run();
    }
}
