//! The simulation kernel: a deterministic cooperative scheduler over OS
//! threads plus a timer wheel for virtual-time events.
//!
//! # Execution model
//!
//! Every simulated process is a real OS thread, but **exactly one process
//! runs at any moment**. A process runs until it yields (sleeps, parks, or
//! finishes); the kernel then either grants the CPU to the next runnable
//! process or, when none is runnable, advances virtual time to the next timer
//! and fires it. All scheduling decisions are ordered by `(virtual time,
//! admission sequence)`, so a simulation is *fully deterministic*: the same
//! program produces the same event order and the same final clock on every
//! run. Threads are used purely as coroutine carriers so that simulated
//! programs (MPI ranks, progress engines) can be written as ordinary blocking
//! Rust code.
//!
//! # Blocking and waking
//!
//! The only kernel-level blocking primitive is [`park`]; everything else
//! (sleeps, mailboxes, completions, semaphores) is built from `park` +
//! timers + [`ProcHandle::unpark`]. Because only one process runs at a time
//! and timer actions only fire while no process is running, the classic
//! check-then-park race cannot occur: nothing can deliver a wakeup between a
//! process's check and its park.

use std::any::Any;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread;

use crate::fiber::{self, Fiber};
use crate::lock::{Condvar, Mutex};

use crate::san::{Report, SanData, SanitizerMode};
use crate::time::{SimDur, SimTime};

/// How simulated processes are carried by the host.
///
/// Both modes make *identical* scheduling decisions — every `(virtual time,
/// admission sequence)` pair is bit-identical — because the kernel's decision
/// logic never consults the carrier. The difference is pure wall-clock cost
/// and footprint.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Legacy mode: one OS thread per process, handed the virtual CPU
    /// through a condvar grant protocol. Simple, but every scheduling
    /// decision costs two OS-level round-trips and every rank costs a
    /// thread, capping practical runs at tens of ranks.
    Threads,
    /// Event-driven mode: processes run as stackful fibers multiplexed on
    /// the kernel's own OS thread, switched in and out directly by the run
    /// loop. Thread count stays O(1) in the number of ranks and a context
    /// switch is a register swap, enabling 1k+-rank simulations.
    Event,
}

impl ExecMode {
    /// The build/environment default: `Event` where fibers are supported,
    /// overridable with `SIM_EXEC=threads|event`.
    pub fn default_mode() -> ExecMode {
        static MODE: std::sync::OnceLock<ExecMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("SIM_EXEC").as_deref() {
            Ok("threads") => ExecMode::Threads,
            Ok("event") => ExecMode::Event,
            _ => {
                if fiber::supported() {
                    ExecMode::Event
                } else {
                    ExecMode::Threads
                }
            }
        })
    }
}

/// Per-process stack budget in bytes (satellite of the 1k-rank work: the
/// default 8 MiB OS stacks exhaust address space and RSS at scale).
/// Override with `SIM_STACK_KB`.
fn stack_bytes() -> usize {
    static KB: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *KB.get_or_init(|| {
        std::env::var("SIM_STACK_KB")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            // Debug frames are much fatter than release ones.
            .unwrap_or(if cfg!(debug_assertions) { 1024 } else { 256 })
            * 1024
    })
}

/// Identifies a process within one simulation.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct ProcId(pub(crate) usize);

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

enum Status {
    /// Waiting in the run queue.
    Runnable,
    /// Currently holding the (single) virtual CPU.
    Running,
    /// Blocked until someone unparks it. The reason is used in deadlock
    /// diagnostics.
    Parked { reason: &'static str },
    /// Finished (returned or panicked).
    Done,
}

struct Proc {
    name: String,
    status: Status,
    /// Set by the kernel when this process may run; consumed by the process.
    /// Thread carriers only.
    granted: bool,
    /// The process's private wakeup channel (paired with the kernel mutex).
    /// Thread carriers only.
    cv: Arc<Condvar>,
    /// Event-mode carrier; `None` for thread-carried processes. Dropped
    /// (freeing the stack) once the process is Done.
    fiber: Option<Box<Fiber>>,
}

/// A heap entry pointing at a timer slot. The action lives in the slot so
/// cancellation can drop it immediately; the entry itself becomes a
/// tombstone, skipped on pop by its stale generation.
struct Timer {
    at: SimTime,
    seq: u64,
    slot: usize,
    gen: u64,
}

struct TimerSlot {
    gen: u64,
    action: Option<Box<dyn FnOnce() + Send>>,
}

/// Handle to a cancellable timer (see [`schedule_cancellable_at`]).
/// Generation-stamped: cancelling after the timer fired (or cancelling
/// twice) is a harmless no-op.
#[derive(Clone, Debug)]
pub struct TimerId {
    slot: usize,
    gen: u64,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct State {
    now: SimTime,
    seq: u64,
    exec: ExecMode,
    procs: Vec<Proc>,
    /// Min-heap of `(admission seq, pid)`: FIFO among processes made runnable
    /// at the same virtual time.
    runnable: BinaryHeap<Reverse<(u64, usize)>>,
    timers: BinaryHeap<Reverse<Timer>>,
    /// Slab of timer actions addressed by heap entries; generation stamps
    /// let cancellation tombstone an entry without touching the heap.
    timer_slots: Vec<TimerSlot>,
    timer_free: Vec<usize>,
    /// Armed (non-tombstoned) timers currently in the heap.
    timers_live: usize,
    live: usize,
    aborted: bool,
    panic: Option<Box<dyn Any + Send>>,
    /// When `Some`, every grant appends a [`WakeEvent`] — the cross-check
    /// record proving the event kernel replays the thread kernel's schedule.
    wake_trace: Option<Vec<WakeEvent>>,
}

/// One scheduling grant: the kernel handed the virtual CPU to a process.
/// Two runs of the same program wake-trace-identical ⇒ every scheduling
/// decision was identical (see [`Sim::record_wake_trace`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WakeEvent {
    /// Admission sequence of the grant (run-queue entry).
    pub seq: u64,
    /// Virtual time of the grant.
    pub at: SimTime,
    /// Granted process.
    pub pid: usize,
}

impl State {
    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn make_runnable(&mut self, pid: ProcId) {
        let seq = self.next_seq();
        let p = &mut self.procs[pid.0];
        debug_assert!(
            matches!(p.status, Status::Parked { .. }),
            "make_runnable on non-parked process {}",
            p.name
        );
        p.status = Status::Runnable;
        self.runnable.push(Reverse((seq, pid.0)));
    }

    fn push_timer(&mut self, at: SimTime, action: Box<dyn FnOnce() + Send>) -> TimerId {
        let at = at.max(self.now);
        let seq = self.next_seq();
        let slot = match self.timer_free.pop() {
            Some(s) => s,
            None => {
                self.timer_slots.push(TimerSlot {
                    gen: 0,
                    action: None,
                });
                self.timer_slots.len() - 1
            }
        };
        let gen = self.timer_slots[slot].gen;
        self.timer_slots[slot].action = Some(action);
        self.timers.push(Reverse(Timer { at, seq, slot, gen }));
        self.timers_live += 1;
        TimerId { slot, gen }
    }

    /// Take the action of a popped heap entry, or `None` for a tombstone.
    /// Live entries free their slot for reuse.
    fn claim_timer(&mut self, t: &Timer) -> Option<Box<dyn FnOnce() + Send>> {
        let s = &mut self.timer_slots[t.slot];
        if s.gen != t.gen {
            return None; // tombstone: cancelled (slot already recycled)
        }
        let action = s.action.take().expect("armed timer slot without action");
        s.gen += 1;
        self.timer_free.push(t.slot);
        self.timers_live -= 1;
        Some(action)
    }

    /// Drop tombstoned heap heads so `peek` sees the next *live* timer.
    fn drop_dead_timers(&mut self) {
        while let Some(Reverse(t)) = self.timers.peek() {
            if self.timer_slots[t.slot].gen == t.gen {
                return;
            }
            self.timers.pop();
        }
    }
}

pub(crate) struct Kernel {
    state: Mutex<State>,
    /// Signalled by processes when they yield back to the kernel.
    kernel_cv: Condvar,
    /// Sanitizer state (see [`crate::san`]). Lock order: never acquire this
    /// while holding `state`; acquiring `state` while holding `san` is fine.
    san: Mutex<SanData>,
    /// Registry of stackless components (see [`crate::component`]).
    pub(crate) components: Mutex<Vec<crate::component::Waker>>,
}

impl Drop for Kernel {
    fn drop(&mut self) {
        self.san.lock().on_kernel_drop();
    }
}

impl Kernel {
    /// Lock the sanitizer state (for `crate::san` hooks).
    pub(crate) fn san_lock(&self) -> crate::lock::MutexGuard<'_, SanData> {
        self.san.lock()
    }

    /// A process's name and the current virtual time, in one state lock.
    pub(crate) fn name_and_now(&self, pid: ProcId) -> (String, SimTime) {
        let st = self.state.lock();
        (st.procs[pid.0].name.clone(), st.now)
    }

    /// Current virtual time (context-free; usable from timer actions).
    pub(crate) fn current_time(&self) -> SimTime {
        self.state.lock().now
    }
}

/// The calling thread's simulation context, if it is a simulation process.
pub(crate) fn current_ctx() -> Option<(Arc<Kernel>, ProcId)> {
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| (Arc::clone(&ctx.kernel), ctx.pid))
    })
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

struct Ctx {
    kernel: Arc<Kernel>,
    pid: ProcId,
}

fn with_ctx<R>(f: impl FnOnce(&Ctx) -> R) -> R {
    // Clone the context out and release the RefCell borrow *before* running
    // `f`: process code may yield inside `f`, and with fiber carriers the
    // kernel must then be free to retarget this thread's CTX cell.
    let ctx = CTX.with(|c| {
        let b = c.borrow();
        let ctx = b
            .as_ref()
            .expect("this sim-core operation must be called from inside a simulation process");
        Ctx {
            kernel: Arc::clone(&ctx.kernel),
            pid: ctx.pid,
        }
    });
    f(&ctx)
}

/// True when the calling thread is a simulation process.
pub fn in_sim() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// A deterministic virtual-time simulation.
///
/// Spawn processes with [`Sim::spawn`], then drive the whole simulation to
/// completion with [`Sim::run`].
#[derive(Clone)]
pub struct Sim {
    kernel: Arc<Kernel>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

/// A handle to a spawned process, usable from other processes (or timer
/// actions) to wake it.
#[derive(Clone)]
pub struct ProcHandle {
    kernel: Arc<Kernel>,
    pid: ProcId,
}

impl ProcHandle {
    /// This process's id.
    pub fn id(&self) -> ProcId {
        self.pid
    }

    /// Wake the process if it is parked; otherwise a no-op.
    pub fn unpark(&self) {
        let mut st = self.kernel.state.lock();
        if matches!(st.procs[self.pid.0].status, Status::Parked { .. }) {
            st.make_runnable(self.pid);
        }
    }
}

impl Sim {
    /// Create an empty simulation with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Sim {
            kernel: Arc::new(Kernel {
                state: Mutex::new(State {
                    now: SimTime::ZERO,
                    seq: 0,
                    exec: ExecMode::default_mode(),
                    procs: Vec::new(),
                    runnable: BinaryHeap::new(),
                    timers: BinaryHeap::new(),
                    timer_slots: Vec::new(),
                    timer_free: Vec::new(),
                    timers_live: 0,
                    live: 0,
                    aborted: false,
                    panic: None,
                    wake_trace: None,
                }),
                kernel_cv: Condvar::new(),
                san: Mutex::new(SanData::new()),
                components: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Register a stackless [`Component`](crate::component::Component) and
    /// return the [`Waker`](crate::component::Waker) that schedules its
    /// ticks. See [`crate::component`] for the execution and determinism
    /// contract.
    pub fn add_component(
        &self,
        name: impl Into<String>,
        comp: impl crate::component::Component + 'static,
    ) -> crate::component::Waker {
        crate::component::register(Arc::clone(&self.kernel), name.into(), Box::new(comp))
    }

    /// Snapshot per-component wake statistics (registration order).
    pub fn component_stats(&self) -> Vec<crate::component::ComponentStats> {
        crate::component::stats(&self.kernel)
    }

    /// Select the process carrier (see [`ExecMode`]). Call before spawning;
    /// processes already spawned keep their carrier. Falls back to
    /// [`ExecMode::Threads`] when fibers are unsupported on this target.
    pub fn set_exec_mode(&self, mode: ExecMode) {
        let mode = if fiber::supported() {
            mode
        } else {
            ExecMode::Threads
        };
        self.kernel.state.lock().exec = mode;
    }

    /// The carrier mode processes are spawned with.
    pub fn exec_mode(&self) -> ExecMode {
        self.kernel.state.lock().exec
    }

    /// Number of armed timers currently in the heap (tombstoned entries
    /// excluded) — the `timers_live` gauge. A progress engine that arms and
    /// cancels one deadline per idle wait holds this flat instead of
    /// accumulating dead entries until their deadlines.
    pub fn timers_live(&self) -> usize {
        self.kernel.state.lock().timers_live
    }

    /// Start recording one [`WakeEvent`] per scheduling grant. The trace is
    /// carrier-independent: a run in [`ExecMode::Event`] and a run in
    /// [`ExecMode::Threads`] of the same program produce identical traces —
    /// the debug cross-check `rank_scale_sweep --smoke` and the
    /// `event_identity` tests assert exactly this.
    pub fn record_wake_trace(&self) {
        self.kernel.state.lock().wake_trace = Some(Vec::new());
    }

    /// The grants recorded since [`record_wake_trace`](Sim::record_wake_trace)
    /// (empty if recording was never enabled).
    pub fn wake_trace(&self) -> Vec<WakeEvent> {
        self.kernel
            .state
            .lock()
            .wake_trace
            .clone()
            .unwrap_or_default()
    }

    /// Enable or disable the sanitizer (see [`crate::san`]). Call before
    /// spawning processes so buffer pools register their accounting.
    pub fn set_sanitizer(&self, mode: SanitizerMode) {
        self.kernel.san.lock().set_mode(mode);
    }

    /// All sanitizer reports recorded so far (empty when the sanitizer is
    /// off or found nothing). Useful after a [`SanitizerMode::Collect`] run,
    /// and still populated when [`Sim::run`] panicked in `Panic` mode.
    pub fn sanitizer_reports(&self) -> Vec<Report> {
        self.kernel.san.lock().reports()
    }

    /// Spawn a process. It becomes runnable at the current virtual time and
    /// will first run once [`Sim::run`] schedules it.
    ///
    /// May also be called from inside a running process to spawn dynamically.
    pub fn spawn(&self, name: impl Into<String>, f: impl FnOnce() + Send + 'static) -> ProcHandle {
        let kernel = Arc::clone(&self.kernel);
        let name = name.into();
        let pid;
        let exec;
        {
            let mut st = kernel.state.lock();
            pid = ProcId(st.procs.len());
            exec = st.exec;
            let seq = st.next_seq();
            st.procs.push(Proc {
                name: name.clone(),
                status: Status::Runnable,
                granted: false,
                cv: Arc::new(Condvar::new()),
                fiber: None,
            });
            st.runnable.push(Reverse((seq, pid.0)));
            st.live += 1;
        }
        let tkernel = Arc::clone(&kernel);
        match exec {
            ExecMode::Event => {
                // Fiber carrier: the body runs on its own stack, switched in
                // by the run loop (which also manages CTX). The first switch
                // is the first grant, so no grant wait is needed here.
                let body = move || {
                    let result = catch_unwind(AssertUnwindSafe(f));
                    let mut st = tkernel.state.lock();
                    st.procs[pid.0].status = Status::Done;
                    st.live -= 1;
                    if let Err(payload) = result {
                        if !st.aborted {
                            st.panic = Some(payload);
                        }
                        // If aborted, the panic is the kernel's own shutdown
                        // signal; swallow it.
                    }
                };
                let fb = Box::new(Fiber::new(stack_bytes(), Box::new(body)));
                kernel.state.lock().procs[pid.0].fiber = Some(fb);
            }
            ExecMode::Threads => {
                thread::Builder::new()
                    .name(format!("sim:{name}"))
                    .stack_size(stack_bytes().max(512 * 1024))
                    .spawn(move || {
                        CTX.with(|c| {
                            *c.borrow_mut() = Some(Ctx {
                                kernel: Arc::clone(&tkernel),
                                pid,
                            })
                        });
                        // Wait for the first grant before touching user code.
                        tkernel.wait_for_grant(pid);
                        let result = catch_unwind(AssertUnwindSafe(f));
                        let mut st = tkernel.state.lock();
                        st.procs[pid.0].status = Status::Done;
                        st.live -= 1;
                        if let Err(payload) = result {
                            if !st.aborted {
                                st.panic = Some(payload);
                            }
                            // If aborted, the panic is the kernel's own
                            // shutdown signal; swallow it.
                        }
                        tkernel.kernel_cv.notify_one();
                        // Drop the context so the Arc<Kernel> cycle breaks
                        // promptly.
                        CTX.with(|c| *c.borrow_mut() = None);
                    })
                    .expect("failed to spawn simulation process thread");
            }
        }
        ProcHandle { kernel, pid }
    }

    /// Schedule `action` to run on the kernel thread at virtual time `at`
    /// (clamped to the current time if already past).
    pub fn schedule_at(&self, at: SimTime, action: impl FnOnce() + Send + 'static) {
        self.kernel.schedule_at(at, action);
    }

    /// Current virtual time (also available to processes via [`now`]).
    pub fn now(&self) -> SimTime {
        self.kernel.state.lock().now
    }

    /// Run the simulation until every process has finished. Returns the final
    /// virtual time.
    ///
    /// Panics (propagating the payload) if any process panicked, and panics
    /// with a diagnostic if the simulation deadlocks (all processes parked
    /// with no pending timers).
    pub fn run(&self) -> SimTime {
        let kernel = &self.kernel;
        let mut st = kernel.state.lock();
        loop {
            if let Some(payload) = st.panic.take() {
                st.aborted = true;
                let cvs: Vec<Arc<Condvar>> = st.procs.iter().map(|p| Arc::clone(&p.cv)).collect();
                for (i, cv) in cvs.iter().enumerate() {
                    st.procs[i].granted = true;
                    cv.notify_one();
                }
                drop(st);
                kernel.abort_fibers();
                resume_unwind(payload);
            }
            if st.live == 0 {
                let now = st.now;
                drop(st);
                // Reconcile buffer-pool accounting at exit (simsan), then
                // run the "exit" checkpoint of the declarative invariants.
                let leaks = kernel.san.lock().reconcile_pools(now);
                if let Some(leak) = leaks.first() {
                    if kernel.san.lock().mode() == SanitizerMode::Panic {
                        panic!("simsan: {leak}");
                    }
                }
                let violations = kernel.san.lock().exit_invariants(now);
                if let Some(v) = violations.first() {
                    if kernel.san.lock().mode() == SanitizerMode::Panic {
                        panic!("simsan: {v}");
                    }
                }
                return now;
            }
            if let Some(Reverse((seq, pid))) = st.runnable.pop() {
                let at = st.now;
                if let Some(trace) = &mut st.wake_trace {
                    trace.push(WakeEvent { seq, at, pid });
                }
                let p = &mut st.procs[pid];
                debug_assert!(matches!(p.status, Status::Runnable));
                p.status = Status::Running;
                if let Some(fb) = &mut p.fiber {
                    // Event carrier: switch straight into the fiber on this
                    // thread; it returns here when it yields or finishes.
                    fb.started = true;
                    let data = fb.data_ptr();
                    let ctx_kernel = Arc::clone(kernel);
                    drop(st);
                    CTX.with(|c| {
                        *c.borrow_mut() = Some(Ctx {
                            kernel: ctx_kernel,
                            pid: ProcId(pid),
                        })
                    });
                    // SAFETY: kernel run loop, no locks held, fiber not
                    // finished (it was in the runnable queue).
                    unsafe { Fiber::switch_into(data) };
                    CTX.with(|c| *c.borrow_mut() = None);
                    st = kernel.state.lock();
                    debug_assert!(
                        !matches!(st.procs[pid].status, Status::Running),
                        "fiber returned to kernel while still Running"
                    );
                    if matches!(st.procs[pid].status, Status::Done) {
                        // Free the stack eagerly; 1k-rank runs would
                        // otherwise hold every finished rank's stack alive.
                        st.procs[pid].fiber = None;
                    }
                } else {
                    p.granted = true;
                    let cv = Arc::clone(&p.cv);
                    cv.notify_one();
                    // Wait until that process yields (status leaves Running)
                    // or records a panic.
                    while matches!(st.procs[pid].status, Status::Running) && st.panic.is_none() {
                        kernel.kernel_cv.wait(&mut st);
                    }
                }
                continue;
            }
            // Nothing runnable: advance virtual time. Tombstones of
            // cancelled timers are discarded here so they neither fire nor
            // drag the clock to a dead deadline.
            st.drop_dead_timers();
            let Some(Reverse(head)) = st.timers.peek() else {
                let parked_info: Vec<(usize, String, &'static str)> = st
                    .procs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, p)| match p.status {
                        Status::Parked { reason } => Some((i, p.name.clone(), reason)),
                        _ => None,
                    })
                    .collect();
                st.aborted = true;
                let cvs: Vec<Arc<Condvar>> = st.procs.iter().map(|p| Arc::clone(&p.cv)).collect();
                for (i, cv) in cvs.iter().enumerate() {
                    st.procs[i].granted = true;
                    cv.notify_one();
                }
                let now = st.now;
                drop(st);
                kernel.abort_fibers();
                // With the sanitizer active, dump a wait-for graph naming
                // each process and the primitive it is blocked on; otherwise
                // fall back to the terse parked-process listing.
                let graph = kernel.san.lock().deadlock_graph(now, &parked_info);
                match graph {
                    Some(g) => panic!(
                        "simulation deadlock at {now}: no runnable process and no pending timer\n{g}"
                    ),
                    None => panic!(
                        "simulation deadlock at {now}: no runnable process and no pending timer; live processes:\n{}",
                        parked_info
                            .iter()
                            .map(|(_, name, reason)| format!("  {name} (parked: {reason})"))
                            .collect::<Vec<_>>()
                            .join("\n")
                    ),
                }
            };
            let at = head.at;
            debug_assert!(at >= st.now, "timer scheduled in the past");
            st.now = at;
            // Fire every timer due at this instant, in admission order, with
            // the lock released (actions re-enter the kernel to wake procs).
            let mut due = Vec::new();
            while st.timers.peek().is_some_and(|Reverse(t)| t.at <= st.now) {
                let t = st.timers.pop().unwrap().0;
                if let Some(action) = st.claim_timer(&t) {
                    due.push(action);
                }
            }
            drop(st);
            for action in due {
                action();
            }
            st = kernel.state.lock();
        }
    }
}

impl Kernel {
    fn wait_for_grant(&self, pid: ProcId) {
        let mut st = self.state.lock();
        let cv = Arc::clone(&st.procs[pid.0].cv);
        while !st.procs[pid.0].granted {
            cv.wait(&mut st);
        }
        st.procs[pid.0].granted = false;
        if st.aborted {
            drop(st);
            panic!("simulation aborted");
        }
        st.procs[pid.0].status = Status::Running;
    }

    /// Yield the CPU: transition to `status`, return control to the kernel,
    /// come back on the next grant. The state transitions (and their
    /// sequence allocations) are identical for both carriers; only the
    /// hand-off mechanism differs.
    fn yield_with(&self, pid: ProcId, to_runnable: bool, reason: &'static str) {
        let fiber_data = {
            let mut st = self.state.lock();
            if to_runnable {
                let seq = st.next_seq();
                st.procs[pid.0].status = Status::Runnable;
                st.runnable.push(Reverse((seq, pid.0)));
            } else {
                st.procs[pid.0].status = Status::Parked { reason };
            }
            match &mut st.procs[pid.0].fiber {
                Some(fb) => Some(fb.data_ptr()),
                None => {
                    self.kernel_cv.notify_one();
                    None
                }
            }
        };
        match fiber_data {
            Some(data) => {
                fiber::yield_from(data);
                // Resumed by the run loop (which already set us Running).
                if self.state.lock().aborted {
                    panic!("simulation aborted");
                }
            }
            None => self.wait_for_grant(pid),
        }
    }

    /// Unwind every live fiber after an abort so their stacks run
    /// destructors (mirroring the granted-thread panic path), and mark
    /// never-started fibers finished so their closures are simply dropped.
    fn abort_fibers(self: &Arc<Self>) {
        loop {
            let next = {
                let mut st = self.state.lock();
                let mut found = None;
                for (i, p) in st.procs.iter_mut().enumerate() {
                    if let Some(fb) = &mut p.fiber {
                        if fb.finished || matches!(p.status, Status::Done) {
                            continue;
                        }
                        if !fb.started {
                            fb.finished = true;
                            continue;
                        }
                        fb.finished = true;
                        found = Some((i, fb.data_ptr()));
                        break;
                    }
                }
                found
            };
            let Some((pid, data)) = next else { return };
            CTX.with(|c| {
                *c.borrow_mut() = Some(Ctx {
                    kernel: Arc::clone(self),
                    pid: ProcId(pid),
                })
            });
            // SAFETY: kernel thread, no locks held; the fiber resumes inside
            // yield_with, sees `aborted`, panics and unwinds to Done.
            unsafe { Fiber::switch_into(data) };
            CTX.with(|c| *c.borrow_mut() = None);
        }
    }

    pub(crate) fn schedule_at(&self, at: SimTime, action: impl FnOnce() + Send + 'static) {
        self.state.lock().push_timer(at, Box::new(action));
    }

    pub(crate) fn schedule_cancellable_at(
        &self,
        at: SimTime,
        action: impl FnOnce() + Send + 'static,
    ) -> TimerId {
        self.state.lock().push_timer(at, Box::new(action))
    }

    /// Cancel a pending timer: the action is dropped immediately and the
    /// heap entry becomes a tombstone. Returns false if it already fired or
    /// was already cancelled.
    pub(crate) fn cancel_timer(&self, id: &TimerId) -> bool {
        let mut st = self.state.lock();
        let s = &mut st.timer_slots[id.slot];
        if s.gen != id.gen {
            return false;
        }
        s.action = None;
        s.gen += 1;
        st.timer_free.push(id.slot);
        st.timers_live -= 1;
        true
    }

    #[allow(dead_code)]
    pub(crate) fn unpark(&self, pid: ProcId) {
        let mut st = self.state.lock();
        if matches!(st.procs[pid.0].status, Status::Parked { .. }) {
            st.make_runnable(pid);
        }
    }
}

// ---------------------------------------------------------------------------
// Process-context API (free functions; panic when called outside a process).
// ---------------------------------------------------------------------------

/// Current virtual time.
pub fn now() -> SimTime {
    with_ctx(|c| c.kernel.state.lock().now)
}

/// The calling process's id.
pub fn current_pid() -> ProcId {
    with_ctx(|c| c.pid)
}

/// A [`ProcHandle`] for the calling process.
pub fn current_handle() -> ProcHandle {
    with_ctx(|c| ProcHandle {
        kernel: Arc::clone(&c.kernel),
        pid: c.pid,
    })
}

/// Advance this process past `dur` of virtual time; other processes and
/// timers run in the interim.
pub fn sleep(dur: SimDur) {
    let t = now() + dur;
    sleep_until(t);
}

/// Sleep until the given instant (no-op if already past, but still yields).
///
/// Robust against *stale unparks*: other primitives (mailbox deadline
/// timers, completions) may wake this process spuriously, so the sleep
/// re-parks until the deadline has genuinely passed.
pub fn sleep_until(t: SimTime) {
    with_ctx(|c| {
        let pid = c.pid;
        if t <= c.kernel.state.lock().now {
            // Still yield so equal-time peers get scheduled fairly.
            c.kernel.yield_with(pid, true, "");
            return;
        }
        let h = ProcHandle {
            kernel: Arc::clone(&c.kernel),
            pid,
        };
        c.kernel.schedule_at(t, move || h.unpark());
        loop {
            c.kernel.yield_with(pid, false, "sleep");
            if t <= c.kernel.state.lock().now {
                return;
            }
            // Spurious wakeup (a stale timer or unpark): keep sleeping; the
            // wake timer scheduled above still fires at `t`.
        }
    });
}

/// Give up the CPU but remain runnable (equal-time round-robin).
pub fn yield_now() {
    with_ctx(|c| c.kernel.yield_with(c.pid, true, ""));
}

/// Block until some other process or timer calls [`ProcHandle::unpark`].
/// `reason` appears in deadlock diagnostics.
pub fn park(reason: &'static str) {
    with_ctx(|c| c.kernel.yield_with(c.pid, false, reason));
}

/// Spawn a sibling process from inside a running process.
pub fn spawn(name: impl Into<String>, f: impl FnOnce() + Send + 'static) -> ProcHandle {
    with_ctx(|c| {
        Sim {
            kernel: Arc::clone(&c.kernel),
        }
        .spawn(name, f)
    })
}

/// Schedule a kernel-thread action at a virtual instant from inside a
/// process.
pub fn schedule_at(at: SimTime, action: impl FnOnce() + Send + 'static) {
    with_ctx(|c| c.kernel.schedule_at(at, action));
}

/// Like [`schedule_at`], but returns a [`TimerId`] with which the timer can
/// be cancelled before it fires (see [`cancel_timer`]).
pub fn schedule_cancellable_at(at: SimTime, action: impl FnOnce() + Send + 'static) -> TimerId {
    with_ctx(|c| c.kernel.schedule_cancellable_at(at, action))
}

/// Cancel a timer armed with [`schedule_cancellable_at`]: its action is
/// dropped immediately and its heap entry becomes a generation-stamped
/// tombstone that is skipped (never fired, never used as a time-advance
/// target). Returns false if the timer already fired or was cancelled.
pub fn cancel_timer(id: &TimerId) -> bool {
    with_ctx(|c| c.kernel.cancel_timer(id))
}

/// The `timers_live` gauge: armed timers currently in the heap, excluding
/// cancelled tombstones. See [`Sim::timers_live`].
pub fn timers_live() -> usize {
    with_ctx(|c| c.kernel.state.lock().timers_live)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn empty_sim_finishes_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.run(), SimTime::ZERO);
    }

    #[test]
    fn single_process_advances_clock() {
        let sim = Sim::new();
        sim.spawn("p", || {
            assert_eq!(now(), SimTime::ZERO);
            sleep(SimDur::from_micros(5));
            assert_eq!(now(), SimTime::from_nanos(5_000));
        });
        assert_eq!(sim.run(), SimTime::from_nanos(5_000));
    }

    #[test]
    fn processes_interleave_deterministically() {
        let run_once = || {
            let log = Arc::new(StdMutex::new(Vec::new()));
            let sim = Sim::new();
            for i in 0..3u32 {
                let log = Arc::clone(&log);
                sim.spawn(format!("p{i}"), move || {
                    for step in 0..3u32 {
                        sleep(SimDur::from_micros(u64::from(i) + 1));
                        log.lock().unwrap().push((i, step, now()));
                    }
                });
            }
            sim.run();
            Arc::try_unwrap(log).unwrap().into_inner().unwrap()
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(
            a, b,
            "two identical runs must produce identical event orders"
        );
        assert!(!a.is_empty());
    }

    #[test]
    fn equal_time_wakeups_are_fifo() {
        let order = Arc::new(StdMutex::new(Vec::new()));
        let sim = Sim::new();
        for i in 0..4u32 {
            let order = Arc::clone(&order);
            sim.spawn(format!("p{i}"), move || {
                sleep(SimDur::from_micros(10)); // all wake at the same instant
                order.lock().unwrap().push(i);
            });
        }
        sim.run();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn park_unpark_round_trip() {
        let sim = Sim::new();
        let target = Arc::new(StdMutex::new(None::<ProcHandle>));
        let woke_at = Arc::new(StdMutex::new(None));
        {
            let target = Arc::clone(&target);
            let woke_at = Arc::clone(&woke_at);
            sim.spawn("sleeper", move || {
                *target.lock().unwrap() = Some(current_handle());
                park("test wait");
                *woke_at.lock().unwrap() = Some(now());
            });
        }
        {
            let target = Arc::clone(&target);
            sim.spawn("waker", move || {
                sleep(SimDur::from_micros(7));
                target.lock().unwrap().as_ref().unwrap().unpark();
            });
        }
        sim.run();
        assert_eq!(woke_at.lock().unwrap().unwrap(), SimTime::from_nanos(7_000));
    }

    #[test]
    fn unpark_on_runnable_process_is_noop() {
        let sim = Sim::new();
        let h = sim.spawn("p", || sleep(SimDur::from_micros(1)));
        sim.spawn("q", move || {
            h.unpark(); // p is runnable, not parked
            h.unpark();
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "simulation deadlock")]
    fn deadlock_is_detected() {
        let sim = Sim::new();
        sim.spawn("stuck", || park("never woken"));
        sim.run();
    }

    #[test]
    #[should_panic(expected = "inner process panic")]
    fn process_panics_propagate() {
        let sim = Sim::new();
        sim.spawn("boom", || {
            sleep(SimDur::from_micros(1));
            panic!("inner process panic");
        });
        sim.spawn("bystander", || park("will be aborted"));
        sim.run();
    }

    #[test]
    fn timers_fire_in_order() {
        let sim = Sim::new();
        let hits = Arc::new(StdMutex::new(Vec::new()));
        for (i, at_us) in [(0u32, 30u64), (1, 10), (2, 20), (3, 10)] {
            let hits = Arc::clone(&hits);
            sim.schedule_at(SimTime::ZERO + SimDur::from_micros(at_us), move || {
                hits.lock().unwrap().push(i);
            });
        }
        // Timers alone don't keep a sim alive; add a process outlasting them.
        sim.spawn("anchor", || sleep(SimDur::from_micros(100)));
        sim.run();
        // Same-instant timers fire in admission order: 1 before 3.
        assert_eq!(*hits.lock().unwrap(), vec![1, 3, 2, 0]);
    }

    #[test]
    fn dynamic_spawn_from_process() {
        let counter = Arc::new(AtomicU64::new(0));
        let sim = Sim::new();
        let c = Arc::clone(&counter);
        sim.spawn("parent", move || {
            sleep(SimDur::from_micros(1));
            let c2 = Arc::clone(&c);
            spawn("child", move || {
                sleep(SimDur::from_micros(1));
                c2.fetch_add(1, Ordering::SeqCst);
            });
            c.fetch_add(1, Ordering::SeqCst);
        });
        let end = sim.run();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
        assert_eq!(end, SimTime::from_nanos(2_000));
    }

    #[test]
    fn sleep_zero_yields_but_keeps_time() {
        let sim = Sim::new();
        sim.spawn("p", || {
            let t = now();
            sleep(SimDur::ZERO);
            yield_now();
            assert_eq!(now(), t);
        });
        sim.run();
    }

    #[test]
    fn sleep_survives_stale_unparks() {
        // Regression: a stale wake timer (e.g. from an abandoned deadline
        // wait) must not shorten a later sleep.
        let sim = Sim::new();
        sim.spawn("p", || {
            let h = current_handle();
            // Plant stale unparks at 5us and 8us.
            schedule_at(SimTime::from_nanos(5_000), {
                let h = h.clone();
                move || h.unpark()
            });
            schedule_at(SimTime::from_nanos(8_000), move || h.unpark());
            sleep(SimDur::from_micros(20));
            assert_eq!(now(), SimTime::from_nanos(20_000), "sleep cut short");
        });
        sim.run();
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let sim = Sim::new();
        let hit = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hit);
        sim.spawn("p", move || {
            sleep(SimDur::from_micros(10));
            let h2 = Arc::clone(&h);
            schedule_at(SimTime::ZERO, move || {
                h2.store(1, Ordering::SeqCst);
            });
            sleep(SimDur::from_micros(1));
            assert_eq!(h.load(Ordering::SeqCst), 1);
        });
        sim.run();
    }
}
