//! `simsan` — the simulation sanitizer.
//!
//! The kernel serializes all memory access in virtual time, so a program
//! that forgets to wait on an asynchronous copy still reads the right
//! bytes: the byte movement happened eagerly at enqueue, only the modeled
//! timeline claims an overlap that real hardware would corrupt. This module
//! catches that class of bug instead of letting calibration hide it. It has
//! three parts:
//!
//! 1. **Happens-before race detector.** Every asynchronous hardware
//!    operation (GPU copy, kernel launch, RDMA write, NIC send) registers
//!    itself with the sanitizer along with the memory ranges it reads and
//!    writes. Sync points — [`Completion::wait`](crate::Completion::wait),
//!    a successful [`Completion::poll`](crate::Completion::poll), stream
//!    events, [`Mailbox`](crate::Mailbox) send/recv,
//!    [`Semaphore`](crate::Semaphore) acquire/release — propagate a
//!    per-process *acquired set* of operation ids (the epoch/vector-clock
//!    state of this design). Any access to a range touched by an in-flight
//!    operation that the accessor has not acquired is reported as a race.
//!    Merely sleeping past an operation's finish time is **not** an edge.
//! 2. **Pool accounting** for protocol linters: bounded buffer pools
//!    (vbufs, staging buffers) register take/put events and are reconciled
//!    when [`Sim::run`](crate::Sim::run) exits — outstanding buffers are
//!    reported as leaks.
//! 3. **Deadlock diagnostics.** Blocking primitives describe what they are
//!    about to block on; when the kernel detects that every live process is
//!    parked with no pending timer it dumps a wait-for graph naming each
//!    process and its blocking primitive instead of a bare panic.
//!
//! The layer is a no-op unless a simulation opts in via
//! [`Sim::set_sanitizer`](crate::Sim::set_sanitizer): every hook first
//! checks one relaxed atomic load. [`SanitizerMode::Panic`] aborts the
//! simulation on the first report (for tests); [`SanitizerMode::Collect`]
//! records reports for later inspection (for benchmarks).

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::kernel::current_ctx;
use crate::time::SimTime;

/// How the sanitizer responds to findings.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum SanitizerMode {
    /// Sanitizer disabled; every hook is a cheap no-op.
    #[default]
    Off,
    /// Panic on the first report (test runs).
    Panic,
    /// Record reports; read them back with
    /// [`Sim::sanitizer_reports`](crate::Sim::sanitizer_reports).
    Collect,
}

/// Classification of a sanitizer finding.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ReportKind {
    /// A memory access raced with an in-flight asynchronous operation.
    Race,
    /// A protocol-level rule was violated (rendezvous state machine, RDMA
    /// registration, flow control).
    Protocol,
    /// A pooled buffer was taken and never returned.
    PoolLeak,
    /// All processes parked with no pending timer.
    Deadlock,
    /// A registered declarative invariant (see [`register_invariant`]) does
    /// not hold.
    Invariant,
}

/// One sanitizer finding, carrying the virtual-time instant and the name of
/// the process it is attributed to.
#[derive(Clone, Debug)]
pub struct Report {
    /// Virtual time at which the finding was made.
    pub time: SimTime,
    /// Name of the process the finding is attributed to.
    pub process: String,
    /// Finding classification.
    pub kind: ReportKind,
    /// Human-readable diagnostic.
    pub message: String,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?}] at {} in {}: {}",
            self.kind, self.time, self.process, self.message
        )
    }
}

/// Identifies one registered asynchronous operation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct OpId(pub(crate) u64);

/// Identifies a registered buffer pool.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PoolId(usize);

/// Which address space a range lives in.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MemDomain {
    /// A [`hostmem`-style] host buffer, identified by its global buffer id.
    Host {
        /// Global host buffer id.
        buf: u64,
    },
    /// One simulated GPU's device address space.
    Dev {
        /// Global GPU instance id.
        gpu: u64,
    },
}

/// A byte range in some address space.
#[derive(Copy, Clone, Debug)]
pub struct MemRange {
    /// The address space.
    pub domain: MemDomain,
    /// First byte offset.
    pub start: usize,
    /// Length in bytes (zero-length ranges never conflict).
    pub len: usize,
}

impl MemRange {
    fn overlaps(&self, other: &MemRange) -> bool {
        self.domain == other.domain
            && self.len > 0
            && other.len > 0
            && self.start < other.start + other.len
            && other.start < self.start + self.len
    }
}

impl fmt::Display for MemRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.domain {
            MemDomain::Host { buf } => write!(f, "host buffer #{buf}"),
            MemDomain::Dev { gpu } => write!(f, "gpu#{gpu} device memory"),
        }?;
        write!(f, " [{}..{})", self.start, self.start + self.len)
    }
}

/// Description of an asynchronous operation being registered.
pub struct OpDesc {
    /// Operation kind, e.g. `"memcpy_async(D2H)"` or `"rdma_write"`.
    pub kind: &'static str,
    /// `(domain, lane)` queue the op executes on — e.g. `(gpu id, stream
    /// id)` or `(node id, tx engine)`. Ops on one queue execute in order.
    pub queue: (u64, u64),
    /// Operations this one is ordered after (queue predecessors, event
    /// waits). The issuer's acquired set is added automatically.
    pub preds: Vec<OpId>,
    /// Ranges the operation reads.
    pub reads: Vec<MemRange>,
    /// Ranges the operation writes.
    pub writes: Vec<MemRange>,
}

/// An opaque snapshot of a process's acquired set, carried across channels
/// (mailbox messages, semaphore releases) to propagate happens-before.
#[derive(Clone, Debug, Default)]
pub struct SanToken {
    ids: Vec<u64>,
}

impl SanToken {
    /// Union another token into this one.
    pub fn merge(&mut self, other: &SanToken) {
        for id in &other.ids {
            if !self.ids.contains(id) {
                self.ids.push(*id);
            }
        }
    }
}

struct OpInfo {
    kind: &'static str,
    #[allow(dead_code)] // retained for diagnostics / future queue lints
    queue: (u64, u64),
    /// Happens-before closure at registration time (predecessor op ids).
    preds: HashSet<u64>,
    reads: Vec<MemRange>,
    writes: Vec<MemRange>,
    issuer: String,
    issued_at: SimTime,
    /// `None` while the finish time is not yet assigned.
    done_at: Option<SimTime>,
}

struct PoolInfo {
    name: String,
    outstanding: i64,
    takes: u64,
}

/// When a registered [`Invariant`] is evaluated.
///
/// Online invariants run after every [`proto_event`] / [`proto_set`];
/// checkpoint invariants run when some process calls
/// [`invariant_checkpoint`] with a matching phase name, and at simulation
/// exit for the reserved phase `"exit"`.
pub struct Invariant {
    /// Stable identifier; registration is idempotent per name, and reports
    /// carry it as `invariant '<name>' violated`.
    pub name: &'static str,
    /// Evaluate after every protocol event (in addition to checkpoints).
    pub online: bool,
    /// Checkpoint phases this invariant runs at (e.g. `"finalize"`,
    /// `"exit"`).
    pub checkpoints: &'static [&'static str],
    /// The predicate: inspect the [`ProtoView`] and return one message per
    /// violation found (empty = invariant holds). Must be deterministic and
    /// must not call back into the sanitizer.
    #[allow(clippy::type_complexity)]
    pub check: Box<dyn Fn(&ProtoView<'_>) -> Vec<String> + Send>,
}

/// Read-only view of the sanitizer's protocol state, handed to invariant
/// predicates. Gauges are keyed `(scope, name)`; iteration is in sorted
/// order so violation messages are byte-stable across runs.
pub struct ProtoView<'a> {
    gauges: &'a BTreeMap<(String, &'static str), i64>,
    pools: &'a [PoolInfo],
    phase: &'static str,
}

impl ProtoView<'_> {
    /// Why the invariant is being evaluated: `"online"` after a protocol
    /// event, or the checkpoint phase name (`"finalize"`, `"exit"`, ...).
    pub fn phase(&self) -> &'static str {
        self.phase
    }
    /// Current value of gauge `name` in `scope` (0 if never touched).
    pub fn gauge(&self, scope: &str, name: &'static str) -> i64 {
        self.gauges
            .get(&(scope.to_string(), name))
            .copied()
            .unwrap_or(0)
    }

    /// All scopes holding gauge `name`, in sorted order.
    pub fn scopes_with(&self, name: &str) -> Vec<&str> {
        self.gauges
            .iter()
            .filter(|((_, n), _)| *n == name)
            .map(|((s, _), _)| s.as_str())
            .collect()
    }

    /// Registered pools as `(name, outstanding, takes)`, in registration
    /// order.
    pub fn pools(&self) -> impl Iterator<Item = (&str, i64, u64)> {
        self.pools
            .iter()
            .map(|p| (p.name.as_str(), p.outstanding, p.takes))
    }
}

/// Per-simulation sanitizer state (lives inside the kernel).
pub(crate) struct SanData {
    mode: SanitizerMode,
    next_op: u64,
    ops: HashMap<u64, OpInfo>,
    acquired: HashMap<usize, HashSet<u64>>,
    pools: Vec<PoolInfo>,
    blocked: HashMap<usize, String>,
    reports: Vec<Report>,
    /// Declarative-invariant state: protocol gauges keyed `(scope, name)`
    /// (sorted so invariant evaluation order is deterministic), the
    /// registered invariants, and the set of already-reported violations
    /// (online invariants re-run on every event; each distinct violation is
    /// reported once).
    gauges: BTreeMap<(String, &'static str), i64>,
    invariants: Vec<Invariant>,
    inv_reported: HashSet<String>,
}

impl SanData {
    pub(crate) fn new() -> Self {
        SanData {
            mode: SanitizerMode::Off,
            next_op: 1,
            ops: HashMap::new(),
            acquired: HashMap::new(),
            pools: Vec::new(),
            blocked: HashMap::new(),
            reports: Vec::new(),
            gauges: BTreeMap::new(),
            invariants: Vec::new(),
            inv_reported: HashSet::new(),
        }
    }

    /// Run every invariant passing `filter` against the current view;
    /// report each new violation. The invariant list is temporarily moved
    /// out so predicates can borrow the gauge/pool state immutably.
    fn eval_invariants(
        &mut self,
        now: SimTime,
        process: &str,
        phase: &'static str,
        filter: impl Fn(&Invariant) -> bool,
    ) {
        if self.invariants.is_empty() {
            return;
        }
        let invariants = std::mem::take(&mut self.invariants);
        let mut found: Vec<(&'static str, String)> = Vec::new();
        {
            let view = ProtoView {
                gauges: &self.gauges,
                pools: &self.pools,
                phase,
            };
            for inv in invariants.iter().filter(|i| filter(i)) {
                for msg in (inv.check)(&view) {
                    found.push((inv.name, msg));
                }
            }
        }
        self.invariants = invariants;
        for (name, msg) in found {
            if self.inv_reported.insert(format!("{name}: {msg}")) {
                self.emit(
                    now,
                    process.to_string(),
                    ReportKind::Invariant,
                    format!("invariant '{name}' violated: {msg}"),
                );
            }
        }
    }

    pub(crate) fn mode(&self) -> SanitizerMode {
        self.mode
    }

    pub(crate) fn set_mode(&mut self, mode: SanitizerMode) {
        match (self.mode, mode) {
            (SanitizerMode::Off, m) if m != SanitizerMode::Off => {
                ENABLED_SIMS.fetch_add(1, Ordering::Relaxed);
            }
            (m, SanitizerMode::Off) if m != SanitizerMode::Off => {
                ENABLED_SIMS.fetch_sub(1, Ordering::Relaxed);
            }
            _ => {}
        }
        self.mode = mode;
    }

    pub(crate) fn reports(&self) -> Vec<Report> {
        self.reports.clone()
    }

    /// Keep the global fast-path counter balanced when a kernel with an
    /// enabled sanitizer is dropped without being switched off first.
    pub(crate) fn on_kernel_drop(&mut self) {
        if self.mode != SanitizerMode::Off {
            ENABLED_SIMS.fetch_sub(1, Ordering::Relaxed);
            self.mode = SanitizerMode::Off;
        }
    }

    fn gc(&mut self, now: SimTime) {
        self.ops.retain(|_, op| op.done_at.is_none_or(|t| t > now));
    }

    fn describe_op(&self, id: u64) -> String {
        match self.ops.get(&id) {
            Some(op) => format!(
                "op#{id} {} (issued by {} at {}, {})",
                op.kind,
                op.issuer,
                op.issued_at,
                match op.done_at {
                    Some(t) => format!("completes at {t}"),
                    None => "finish time pending".into(),
                }
            ),
            None => format!("op#{id} (already retired)"),
        }
    }

    /// Transitive happens-before closure of `seed` over live ops.
    fn closure(&self, seed: impl IntoIterator<Item = u64>) -> HashSet<u64> {
        let mut out: HashSet<u64> = HashSet::new();
        let mut stack: Vec<u64> = seed.into_iter().collect();
        while let Some(id) = stack.pop() {
            if out.insert(id) {
                if let Some(op) = self.ops.get(&id) {
                    stack.extend(op.preds.iter().copied());
                }
            }
        }
        out
    }

    fn emit(&mut self, time: SimTime, process: String, kind: ReportKind, message: String) {
        let r = Report {
            time,
            process,
            kind,
            message,
        };
        self.reports.push(r.clone());
        if self.mode == SanitizerMode::Panic {
            panic!("simsan: {r}");
        }
    }

    /// Check one access (by a process or a newly registered op) against all
    /// live ops, excluding ids in `hb`.
    #[allow(clippy::too_many_arguments)]
    fn check_ranges(
        &mut self,
        now: SimTime,
        accessor: &str,
        reads: &[MemRange],
        writes: &[MemRange],
        hb: &HashSet<u64>,
        time: SimTime,
        proc_name: &str,
    ) {
        let mut findings: Vec<String> = Vec::new();
        for (id, op) in &self.ops {
            if hb.contains(id) {
                continue;
            }
            if op.done_at.is_some_and(|t| t <= now) {
                continue; // completed; gc will collect it
            }
            // write/write and write/read conflicts in either direction.
            for r in writes {
                if op
                    .reads
                    .iter()
                    .chain(op.writes.iter())
                    .any(|o| r.overlaps(o))
                {
                    findings.push(format!(
                        "{accessor} write of {r} overlaps in-flight {} with no happens-before edge",
                        self.describe_op(*id)
                    ));
                    break;
                }
            }
            for r in reads {
                if op.writes.iter().any(|o| r.overlaps(o)) {
                    findings.push(format!(
                        "{accessor} read of {r} overlaps in-flight {} with no happens-before edge",
                        self.describe_op(*id)
                    ));
                    break;
                }
            }
        }
        for msg in findings {
            self.emit(time, proc_name.to_string(), ReportKind::Race, msg);
        }
    }
}

/// Number of simulations with the sanitizer enabled; the global fast-path
/// flag every hook checks first.
static ENABLED_SIMS: AtomicUsize = AtomicUsize::new(0);

/// Allocator for queue-domain ids, so every device / NIC gets a namespace
/// of its own in [`OpDesc::queue`] regardless of user-facing numbering.
static NEXT_QUEUE_DOMAIN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// Allocate a fresh queue domain (process-global, never reused).
pub fn new_queue_domain() -> u64 {
    NEXT_QUEUE_DOMAIN.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static SUPPRESS: Cell<u32> = const { Cell::new(0) };
}

/// True if any live simulation has the sanitizer enabled (fast check; the
/// per-simulation mode is consulted after).
#[inline]
pub fn enabled() -> bool {
    ENABLED_SIMS.load(Ordering::Relaxed) != 0
}

/// RAII guard suppressing access checks on this thread — used while an
/// operation's own (already declared and checked) byte movement executes.
pub struct SuppressGuard {
    _private: (),
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESS.with(|s| s.set(s.get() - 1));
    }
}

/// Suppress access checks on the calling thread until the guard drops.
pub fn suppress() -> SuppressGuard {
    SUPPRESS.with(|s| s.set(s.get() + 1));
    SuppressGuard { _private: () }
}

fn suppressed() -> bool {
    SUPPRESS.with(|s| s.get() > 0)
}

/// `(kernel, pid, name, now)` of the calling simulation process, if the
/// sanitizer is active there.
macro_rules! with_active_san {
    (|$sd:ident, $pid:ident, $name:ident, $now:ident| $body:block) => {
        if let Some((kernel, pid)) = current_ctx() {
            let ($name, $now) = kernel.name_and_now(pid);
            let mut $sd = kernel.san_lock();
            let $pid = pid.0;
            if $sd.mode != SanitizerMode::Off {
                $body
            }
        }
    };
}

/// Register an asynchronous operation. Its declared ranges are immediately
/// checked against every other in-flight op outside its happens-before
/// closure. Returns `None` when the sanitizer is off.
pub fn begin_op(desc: OpDesc) -> Option<OpId> {
    if !enabled() {
        return None;
    }
    let (kernel, pid) = current_ctx()?;
    let (name, now) = kernel.name_and_now(pid);
    let mut sd = kernel.san_lock();
    if sd.mode == SanitizerMode::Off {
        return None;
    }
    sd.gc(now);
    let mut seed: Vec<u64> = desc.preds.iter().map(|p| p.0).collect();
    if let Some(acq) = sd.acquired.get(&pid.0) {
        seed.extend(acq.iter().copied());
    }
    let hb = sd.closure(seed);
    let accessor = format!("op {}", desc.kind);
    sd.check_ranges(now, &accessor, &desc.reads, &desc.writes, &hb, now, &name);
    let id = sd.next_op;
    sd.next_op += 1;
    sd.ops.insert(
        id,
        OpInfo {
            kind: desc.kind,
            queue: desc.queue,
            preds: hb,
            reads: desc.reads,
            writes: desc.writes,
            issuer: name,
            issued_at: now,
            done_at: None,
        },
    );
    Some(OpId(id))
}

/// Assign the operation's finish instant (known once the issuing layer has
/// scheduled it).
pub fn op_complete_at(op: Option<OpId>, done_at: SimTime) {
    let Some(op) = op else { return };
    with_active_san!(|sd, _pid, _name, _now| {
        if let Some(info) = sd.ops.get_mut(&op.0) {
            info.done_at = Some(done_at);
        }
    });
}

/// The calling process acquires (synchronizes with) the given operations
/// and, transitively, everything they are ordered after.
pub fn acquire_ops(ops: &[OpId]) {
    if !enabled() || ops.is_empty() {
        return;
    }
    with_active_san!(|sd, pid, _name, _now| {
        let hb = sd.closure(ops.iter().map(|o| o.0));
        let mut acq = sd.acquired.remove(&pid).unwrap_or_default();
        acq.extend(hb);
        // Prune retired ops so acquired sets stay bounded.
        acq.retain(|id| sd.ops.contains_key(id));
        sd.acquired.insert(pid, acq);
    });
}

/// The calling process acquires every live op on the given queue domain
/// (all lanes, or one specific lane) — e.g. `cudaDeviceSynchronize` /
/// `cudaStreamSynchronize` semantics.
pub fn acquire_queue(domain: u64, lane: Option<u64>) {
    if !enabled() {
        return;
    }
    with_active_san!(|sd, pid, _name, _now| {
        let ids: Vec<u64> = sd
            .ops
            .iter()
            .filter(|(_, op)| op.queue.0 == domain && lane.is_none_or(|l| op.queue.1 == l))
            .map(|(id, _)| *id)
            .collect();
        let hb = sd.closure(ids);
        sd.acquired.entry(pid).or_default().extend(hb);
    });
}

/// Check a direct (process-level) host-buffer access.
pub fn on_host_access(buf: u64, start: usize, len: usize, write: bool) {
    on_access(
        MemRange {
            domain: MemDomain::Host { buf },
            start,
            len,
        },
        write,
    );
}

/// Check a direct (process-level) device-memory access.
pub fn on_dev_access(gpu: u64, start: usize, len: usize, write: bool) {
    on_access(
        MemRange {
            domain: MemDomain::Dev { gpu },
            start,
            len,
        },
        write,
    );
}

fn on_access(range: MemRange, write: bool) {
    if !enabled() || range.len == 0 || suppressed() {
        return;
    }
    with_active_san!(|sd, pid, name, now| {
        sd.gc(now);
        let hb = sd.acquired.get(&pid).cloned().unwrap_or_default();
        let (reads, writes) = if write {
            (vec![], vec![range])
        } else {
            (vec![range], vec![])
        };
        sd.check_ranges(now, "process", &reads, &writes, &hb, now, &name);
    });
}

/// Snapshot the calling process's acquired set for transfer across a
/// channel (mailbox message, semaphore release). `None` when off.
pub fn channel_token() -> Option<SanToken> {
    if !enabled() {
        return None;
    }
    let (kernel, pid) = current_ctx()?;
    let sd = kernel.san_lock();
    if sd.mode == SanitizerMode::Off {
        return None;
    }
    Some(SanToken {
        ids: sd
            .acquired
            .get(&pid.0)
            .map(|a| a.iter().copied().collect())
            .unwrap_or_default(),
    })
}

/// Merge a token received over a channel into the calling process's
/// acquired set.
pub fn merge_token(token: &SanToken) {
    if !enabled() || token.ids.is_empty() {
        return;
    }
    with_active_san!(|sd, pid, _name, _now| {
        sd.acquired
            .entry(pid)
            .or_default()
            .extend(token.ids.iter().copied());
    });
}

/// Register a named buffer pool for leak accounting. Returns `None` when
/// the sanitizer is off (the id can then be ignored).
pub fn pool_register(name: impl Into<String>) -> Option<PoolId> {
    if !enabled() {
        return None;
    }
    let (kernel, _pid) = current_ctx()?;
    let mut sd = kernel.san_lock();
    if sd.mode == SanitizerMode::Off {
        return None;
    }
    sd.pools.push(PoolInfo {
        name: name.into(),
        outstanding: 0,
        takes: 0,
    });
    Some(PoolId(sd.pools.len() - 1))
}

/// Record one buffer taken from the pool.
pub fn pool_take(pool: Option<PoolId>) {
    let Some(PoolId(idx)) = pool else { return };
    with_active_san!(|sd, _pid, _name, _now| {
        if let Some(p) = sd.pools.get_mut(idx) {
            p.outstanding += 1;
            p.takes += 1;
        }
    });
}

/// Record one buffer returned to the pool.
pub fn pool_put(pool: Option<PoolId>) {
    let Some(PoolId(idx)) = pool else { return };
    with_active_san!(|sd, _pid, _name, _now| {
        if let Some(p) = sd.pools.get_mut(idx) {
            p.outstanding -= 1;
        }
    });
}

/// Register a declarative invariant. Idempotent per [`Invariant::name`]:
/// the first registration wins (so every rank's engine can try). No-op
/// when the sanitizer is off.
pub fn register_invariant(inv: Invariant) {
    if !enabled() {
        return;
    }
    with_active_san!(|sd, _pid, _name, _now| {
        if !sd.invariants.iter().any(|i| i.name == inv.name) {
            sd.invariants.push(inv);
        }
    });
}

/// Add `delta` to protocol gauge `(scope, name)`, then evaluate every
/// online invariant against the updated state. Violations are attributed
/// to the calling process at the current virtual time; each distinct
/// violation is reported once.
pub fn proto_event(scope: &str, name: &'static str, delta: i64) {
    if !enabled() {
        return;
    }
    with_active_san!(|sd, _pid, pname, now| {
        *sd.gauges.entry((scope.to_string(), name)).or_insert(0) += delta;
        sd.eval_invariants(now, &pname, "online", |i| i.online);
    });
}

/// Set protocol gauge `(scope, name)` to `value`, then evaluate online
/// invariants (see [`proto_event`]).
pub fn proto_set(scope: &str, name: &'static str, value: i64) {
    if !enabled() {
        return;
    }
    with_active_san!(|sd, _pid, pname, now| {
        sd.gauges.insert((scope.to_string(), name), value);
        sd.eval_invariants(now, &pname, "online", |i| i.online);
    });
}

/// Evaluate every invariant registered for checkpoint `phase` (e.g. a
/// rank calling it with `"finalize"` once its requests are drained). The
/// phase `"exit"` also runs automatically when `Sim::run` returns.
pub fn invariant_checkpoint(phase: &'static str) {
    if !enabled() {
        return;
    }
    with_active_san!(|sd, _pid, pname, now| {
        sd.eval_invariants(now, &pname, phase, |i| i.checkpoints.contains(&phase));
    });
}

/// Report a protocol-level violation (rendezvous state machine, RDMA
/// registration, flow control) attributed to the calling process.
pub fn report_protocol(message: impl Into<String>) {
    if !enabled() {
        return;
    }
    let message = message.into();
    with_active_san!(|sd, _pid, name, now| {
        sd.emit(now, name, ReportKind::Protocol, message);
    });
}

/// Note what the calling process is about to block on (for the deadlock
/// wait-for graph). The closure only runs when the sanitizer is active.
pub fn note_blocked(desc: impl FnOnce() -> String) {
    if !enabled() {
        return;
    }
    with_active_san!(|sd, pid, _name, _now| {
        let d = desc();
        sd.blocked.insert(pid, d);
    });
}

/// Clear the calling process's blocked-on note (call after waking).
pub fn clear_blocked() {
    if !enabled() {
        return;
    }
    with_active_san!(|sd, pid, _name, _now| {
        sd.blocked.remove(&pid);
    });
}

/// Describe a set of operation ids (used in blocking notes).
pub fn describe_ops(ops: &[OpId]) -> String {
    if ops.is_empty() {
        return "completion (no attached op)".to_string();
    }
    if let Some((kernel, _pid)) = current_ctx() {
        let sd = kernel.san_lock();
        return ops
            .iter()
            .map(|o| sd.describe_op(o.0))
            .collect::<Vec<_>>()
            .join(", ");
    }
    "completion".to_string()
}

// --- kernel-side hooks (called from Sim::run, not from processes) ----------

impl SanData {
    /// Reconcile pool accounting at simulation exit. Returns leak reports
    /// (already recorded); the caller panics in `Panic` mode.
    pub(crate) fn reconcile_pools(&mut self, now: SimTime) -> Vec<Report> {
        if self.mode == SanitizerMode::Off {
            return Vec::new();
        }
        let leaks: Vec<Report> = self
            .pools
            .iter()
            .filter(|p| p.outstanding != 0)
            .map(|p| Report {
                time: now,
                process: "kernel".to_string(),
                kind: ReportKind::PoolLeak,
                message: format!(
                    "pool '{}' reconciliation at simulation exit: {} buffer(s) outstanding \
                     after {} take(s)",
                    p.name, p.outstanding, p.takes
                ),
            })
            .collect();
        self.reports.extend(leaks.iter().cloned());
        leaks
    }

    /// Run the `"exit"` checkpoint invariants at simulation exit. Returns
    /// the new violation reports (already recorded); the caller panics in
    /// `Panic` mode, mirroring [`reconcile_pools`](Self::reconcile_pools).
    pub(crate) fn exit_invariants(&mut self, now: SimTime) -> Vec<Report> {
        if self.mode == SanitizerMode::Off || self.invariants.is_empty() {
            return Vec::new();
        }
        let invariants = std::mem::take(&mut self.invariants);
        let mut found: Vec<(&'static str, String)> = Vec::new();
        {
            let view = ProtoView {
                gauges: &self.gauges,
                pools: &self.pools,
                phase: "exit",
            };
            for inv in invariants
                .iter()
                .filter(|i| i.checkpoints.contains(&"exit"))
            {
                for msg in (inv.check)(&view) {
                    found.push((inv.name, msg));
                }
            }
        }
        self.invariants = invariants;
        let mut out = Vec::new();
        for (name, msg) in found {
            if self.inv_reported.insert(format!("{name}: {msg}")) {
                let r = Report {
                    time: now,
                    process: "kernel".to_string(),
                    kind: ReportKind::Invariant,
                    message: format!("invariant '{name}' violated: {msg}"),
                };
                self.reports.push(r.clone());
                out.push(r);
            }
        }
        out
    }

    /// Build the deadlock wait-for graph and record one report per parked
    /// process. `parked` is `(pid, name, park reason)`.
    pub(crate) fn deadlock_graph(
        &mut self,
        now: SimTime,
        parked: &[(usize, String, &'static str)],
    ) -> Option<String> {
        if self.mode == SanitizerMode::Off {
            return None;
        }
        let mut lines = Vec::new();
        for (pid, name, reason) in parked {
            let target = self
                .blocked
                .get(pid)
                .cloned()
                .unwrap_or_else(|| format!("<{reason}>"));
            lines.push(format!("  {name} (parked: {reason}) -> {target}"));
            self.reports.push(Report {
                time: now,
                process: name.clone(),
                kind: ReportKind::Deadlock,
                message: format!(
                    "parked ({reason}) waiting on {target} in a deadlocked simulation"
                ),
            });
        }
        Some(format!("wait-for graph:\n{}", lines.join("\n")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Sim;
    use crate::time::SimDur;
    use crate::Completion;

    #[test]
    fn hooks_are_noops_when_off() {
        let sim = Sim::new();
        sim.spawn("p", || {
            // All hooks must silently do nothing with the sanitizer off.
            assert!(begin_op(OpDesc {
                kind: "test",
                queue: (0, 0),
                preds: vec![],
                reads: vec![],
                writes: vec![],
            })
            .is_none());
            on_host_access(1, 0, 64, true);
            acquire_ops(&[OpId(7)]);
            assert!(channel_token().is_none());
            assert!(pool_register("x").is_none());
        });
        sim.run();
        assert!(sim.sanitizer_reports().is_empty());
    }

    #[test]
    fn unwaited_op_access_is_reported() {
        let sim = Sim::new();
        sim.set_sanitizer(SanitizerMode::Collect);
        sim.spawn("victim", || {
            let op = begin_op(OpDesc {
                kind: "memcpy_async(D2H)",
                queue: (0, 0),
                preds: vec![],
                reads: vec![],
                writes: vec![MemRange {
                    domain: MemDomain::Host { buf: 42 },
                    start: 0,
                    len: 1024,
                }],
            });
            op_complete_at(op, crate::now() + SimDur::from_micros(10));
            // Touch the buffer while the copy is still in flight.
            on_host_access(42, 100, 8, false);
        });
        sim.run();
        let reports = sim.sanitizer_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, ReportKind::Race);
        assert_eq!(reports[0].process, "victim");
        assert!(reports[0].message.contains("memcpy_async(D2H)"));
    }

    #[test]
    fn waiting_creates_a_happens_before_edge() {
        let sim = Sim::new();
        sim.set_sanitizer(SanitizerMode::Panic);
        sim.spawn("p", || {
            let op = begin_op(OpDesc {
                kind: "memcpy_async(D2H)",
                queue: (0, 0),
                preds: vec![],
                reads: vec![],
                writes: vec![MemRange {
                    domain: MemDomain::Host { buf: 7 },
                    start: 0,
                    len: 64,
                }],
            });
            let end = crate::now() + SimDur::from_micros(5);
            op_complete_at(op, end);
            let c = Completion::ready_at(end);
            if let Some(op) = op {
                c.attach_ops(&[op]);
            }
            c.wait();
            on_host_access(7, 0, 64, false); // clean: acquired via wait
        });
        sim.run();
        assert!(sim.sanitizer_reports().is_empty());
    }

    #[test]
    fn disjoint_ranges_do_not_conflict() {
        let sim = Sim::new();
        sim.set_sanitizer(SanitizerMode::Panic);
        sim.spawn("p", || {
            let op = begin_op(OpDesc {
                kind: "memcpy_async(H2D)",
                queue: (0, 0),
                preds: vec![],
                reads: vec![MemRange {
                    domain: MemDomain::Host { buf: 1 },
                    start: 0,
                    len: 100,
                }],
                writes: vec![],
            });
            op_complete_at(op, crate::now() + SimDur::from_micros(5));
            on_host_access(1, 200, 50, true); // disjoint: ok
            on_host_access(2, 0, 50, true); // other buffer: ok
            on_host_access(1, 50, 25, false); // read vs read: ok
        });
        sim.run();
    }

    #[test]
    fn pool_leak_is_reconciled_at_exit() {
        let sim = Sim::new();
        sim.set_sanitizer(SanitizerMode::Collect);
        sim.spawn("leaky", || {
            let pool = pool_register("vbufs");
            pool_take(pool);
            pool_take(pool);
            pool_put(pool);
            // One buffer never returned.
        });
        sim.run();
        let reports = sim.sanitizer_reports();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].kind, ReportKind::PoolLeak);
        assert!(reports[0].message.contains("vbufs"));
        assert!(reports[0].message.contains("1 buffer(s) outstanding"));
    }

    #[test]
    fn token_transfer_propagates_acquisition() {
        let sim = Sim::new();
        sim.set_sanitizer(SanitizerMode::Panic);
        let mb = crate::Mailbox::new();
        {
            let mb = mb.clone();
            sim.spawn("producer", move || {
                let op = begin_op(OpDesc {
                    kind: "memcpy_async(D2H)",
                    queue: (0, 0),
                    preds: vec![],
                    reads: vec![],
                    writes: vec![MemRange {
                        domain: MemDomain::Host { buf: 9 },
                        start: 0,
                        len: 64,
                    }],
                });
                let end = crate::now() + SimDur::from_micros(3);
                op_complete_at(op, end);
                let c = Completion::ready_at(end);
                if let Some(op) = op {
                    c.attach_ops(&[op]);
                }
                c.wait();
                mb.send(0u8); // the token rides along
            });
        }
        sim.spawn("consumer", move || {
            let _ = mb.recv();
            on_host_access(9, 0, 64, false); // clean: HB via the message
        });
        sim.run();
    }
}
