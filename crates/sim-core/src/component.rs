//! Stackless `tick()` components: reactive infrastructure scheduled
//! straight off the kernel timer heap.
//!
//! A [`Component`] is the event-driven counterpart of a process: instead of
//! a carrier (thread or fiber) that blocks, it is a state machine whose
//! [`tick`](Component::tick) runs inline on the kernel thread whenever its
//! [`Waker`] fires. Components never park, never own a stack, and cost one
//! timer-heap entry per pending wake — the natural home for hardware-side
//! reactivity (fabric delivery, completion fan-out, timer-driven retries)
//! that was previously expressed as ad-hoc boxed timer closures.
//!
//! # Determinism
//!
//! A wake is an ordinary kernel timer: it is admitted with a `(wake time,
//! admission seq)` pair exactly like a closure scheduled with
//! [`schedule_at`](crate::schedule_at), so converting a closure-based
//! design to a component preserves the simulation's event order bit for
//! bit **provided the wake discipline is unchanged**. Two disciplines are
//! offered:
//!
//! * [`Waker::wake_exact_at`] — one timer per wake, no merging. Seq-for-seq
//!   identical to the closure it replaces; use it when converting existing
//!   timing-sensitive paths (the ib-sim delivery pump uses this).
//! * [`Waker::wake_at`] — coalescing: a wake at `t` is absorbed if the
//!   component is already armed for an instant `<= t`, and re-arms (via
//!   timer cancellation) if armed later. Fewer heap entries, but a
//!   different seq stream; use it for new components with no committed
//!   baseline.
//!
//! Ticks always run while no process holds the virtual CPU (timer actions
//! only fire between grants), so a component may freely lock shared state
//! that processes also touch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::kernel::{Kernel, TimerId};
use crate::lock::Mutex;
use crate::time::SimTime;

/// A stackless reactive simulation element.
pub trait Component: Send {
    /// React to a wake at virtual time `now`. Drain whatever inputs are
    /// due, then return the next instant a tick is wanted regardless of
    /// external wakes (`None` to stay idle until woken). Ticks may be
    /// spurious — e.g. when work was already drained by an earlier tick at
    /// the same instant — and must tolerate finding nothing to do.
    fn tick(&mut self, now: SimTime) -> Option<SimTime>;
}

pub(crate) struct WakerInner {
    name: String,
    kernel: Arc<Kernel>,
    comp: Mutex<Box<dyn Component>>,
    /// Earliest armed coalescable wake, with the timer to cancel on re-arm.
    armed: Mutex<Option<(SimTime, TimerId)>>,
    ticks: AtomicU64,
    coalesced: AtomicU64,
}

/// Handle that schedules a registered [`Component`]'s ticks. Cloneable and
/// callable from any simulation context (processes, timer actions, other
/// components' ticks).
#[derive(Clone)]
pub struct Waker {
    inner: Arc<WakerInner>,
}

/// Wake statistics for one registered component (see
/// [`Sim::component_stats`](crate::Sim::component_stats)).
#[derive(Clone, Debug)]
pub struct ComponentStats {
    /// Registration name.
    pub name: String,
    /// Ticks executed.
    pub ticks: u64,
    /// Coalesced (absorbed) `wake_at` calls that did not arm a timer.
    pub coalesced: u64,
}

/// Register a component with the kernel's registry; called by
/// [`Sim::add_component`](crate::Sim::add_component).
pub(crate) fn register(kernel: Arc<Kernel>, name: String, comp: Box<dyn Component>) -> Waker {
    let w = Waker {
        inner: Arc::new(WakerInner {
            name,
            kernel: Arc::clone(&kernel),
            comp: Mutex::new(comp),
            armed: Mutex::new(None),
            ticks: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }),
    };
    kernel.components.lock().push(w.clone());
    w
}

/// Snapshot the registry's stats.
pub(crate) fn stats(kernel: &Kernel) -> Vec<ComponentStats> {
    kernel
        .components
        .lock()
        .iter()
        .map(|w| ComponentStats {
            name: w.inner.name.clone(),
            ticks: w.inner.ticks.load(Ordering::Relaxed),
            coalesced: w.inner.coalesced.load(Ordering::Relaxed),
        })
        .collect()
}

impl Waker {
    /// Run one tick now (kernel thread, inside a timer action).
    fn fire(&self, now: SimTime) {
        *self.inner.armed.lock() = None;
        self.inner.ticks.fetch_add(1, Ordering::Relaxed);
        let next = self.inner.comp.lock().tick(now);
        if let Some(t) = next {
            self.wake_at(t);
        }
    }

    fn arm(&self, t: SimTime) -> TimerId {
        let w = self.clone();
        let kernel = Arc::clone(&self.inner.kernel);
        self.inner.kernel.schedule_cancellable_at(t, move || {
            let now = kernel.current_time();
            w.fire(now);
        })
    }

    /// Coalescing wake: ensure a tick runs no later than `t`. Absorbed when
    /// already armed for an instant `<= t`; re-arms (cancelling the later
    /// timer) otherwise. The timer-heap footprint is at most one live entry
    /// per component.
    pub fn wake_at(&self, t: SimTime) {
        let mut armed = self.inner.armed.lock();
        match &*armed {
            Some((at, _)) if *at <= t => {
                self.inner.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            other => {
                if let Some((_, id)) = other {
                    self.inner.kernel.cancel_timer(id);
                }
                let id = self.arm(t);
                *armed = Some((t, id));
            }
        }
    }

    /// Coalescing wake at the current virtual instant. Usable from any
    /// simulation context, including timer actions (where
    /// [`now`](crate::now) is unavailable).
    pub fn wake_now(&self) {
        self.wake_at(self.inner.kernel.current_time());
    }

    /// Exact wake: always admit one fresh timer at `t`, never coalesce.
    /// Seq-for-seq identical to scheduling a closure with
    /// [`schedule_at`](crate::schedule_at) — the discipline to use when a
    /// closure-based path with committed virtual-time results is converted
    /// to a component.
    pub fn wake_exact_at(&self, t: SimTime) {
        let w = self.clone();
        let kernel = Arc::clone(&self.inner.kernel);
        self.inner.kernel.schedule_at(t, move || {
            let now = kernel.current_time();
            w.fire(now);
        });
    }

    /// Registration name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.inner.ticks.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Waker({}, ticks={})",
            self.inner.name,
            self.inner.ticks.load(Ordering::Relaxed)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{now, sleep, Sim};
    use crate::time::SimDur;
    use std::sync::Mutex as StdMutex;

    struct Recorder {
        hits: Arc<StdMutex<Vec<u64>>>,
        every: Option<SimDur>,
        stop_after: usize,
    }

    impl Component for Recorder {
        fn tick(&mut self, now: SimTime) -> Option<SimTime> {
            let mut h = self.hits.lock().unwrap();
            h.push(now.as_nanos());
            match self.every {
                Some(d) if h.len() < self.stop_after => Some(now + d),
                _ => None,
            }
        }
    }

    #[test]
    fn component_ticks_at_woken_instants() {
        let sim = Sim::new();
        let hits = Arc::new(StdMutex::new(Vec::new()));
        let w = sim.add_component(
            "rec",
            Recorder {
                hits: Arc::clone(&hits),
                every: None,
                stop_after: 0,
            },
        );
        sim.spawn("driver", move || {
            w.wake_exact_at(now() + SimDur::from_micros(3));
            w.wake_exact_at(now() + SimDur::from_micros(1));
            sleep(SimDur::from_micros(10));
        });
        sim.run();
        assert_eq!(*hits.lock().unwrap(), vec![1_000, 3_000]);
    }

    #[test]
    fn self_rearming_component_runs_periodically() {
        let sim = Sim::new();
        let hits = Arc::new(StdMutex::new(Vec::new()));
        let w = sim.add_component(
            "periodic",
            Recorder {
                hits: Arc::clone(&hits),
                every: Some(SimDur::from_micros(2)),
                stop_after: 3,
            },
        );
        sim.spawn("driver", move || {
            w.wake_at(now() + SimDur::from_micros(2));
            sleep(SimDur::from_micros(20));
        });
        sim.run();
        assert_eq!(*hits.lock().unwrap(), vec![2_000, 4_000, 6_000]);
    }

    #[test]
    fn coalescing_absorbs_later_wakes_and_rearms_earlier_ones() {
        let sim = Sim::new();
        let hits = Arc::new(StdMutex::new(Vec::new()));
        let w = sim.add_component(
            "coal",
            Recorder {
                hits: Arc::clone(&hits),
                every: None,
                stop_after: 0,
            },
        );
        let stats_sim = sim.clone();
        sim.spawn("driver", move || {
            let base = now();
            w.wake_at(base + SimDur::from_micros(5));
            w.wake_at(base + SimDur::from_micros(7)); // absorbed (later)
            w.wake_at(base + SimDur::from_micros(5)); // absorbed (equal)
            w.wake_at(base + SimDur::from_micros(2)); // re-arms earlier
            sleep(SimDur::from_micros(10));
            // One tick at 2us; the 5us timer was cancelled, not fired.
            let st = &stats_sim.component_stats()[0];
            assert_eq!(st.name, "coal");
            assert_eq!(st.ticks, 1);
            assert_eq!(st.coalesced, 2);
        });
        sim.run();
        assert_eq!(*hits.lock().unwrap(), vec![2_000]);
    }

    #[test]
    fn cancelled_coalesced_timer_leaves_no_live_entry() {
        let sim = Sim::new();
        let hits = Arc::new(StdMutex::new(Vec::new()));
        let w = sim.add_component(
            "tidy",
            Recorder {
                hits: Arc::clone(&hits),
                every: None,
                stop_after: 0,
            },
        );
        let probe = sim.clone();
        sim.spawn("driver", move || {
            let base = now();
            w.wake_at(base + SimDur::from_micros(50));
            w.wake_at(base + SimDur::from_micros(1)); // cancels the 50us arm
            sleep(SimDur::from_micros(2));
            // Only this process's sleep timer machinery may remain; the
            // component holds no armed timer after its tick.
            assert_eq!(probe.timers_live(), 0);
        });
        sim.run();
        assert_eq!(*hits.lock().unwrap(), vec![1_000]);
    }
}
