//! # sim-core — deterministic virtual-time simulation kernel
//!
//! This crate is the substrate for the whole reproduction: a discrete-event
//! simulation kernel in which *processes* (MPI ranks, progress engines) are
//! ordinary blocking Rust closures running on dedicated OS threads, while a
//! cooperative scheduler guarantees that exactly one process executes at a
//! time and that every scheduling decision is ordered by `(virtual time,
//! admission sequence)`. The result is a simulator that is:
//!
//! * **deterministic** — identical runs produce identical event orders and
//!   identical final clocks, so benchmark output is exactly reproducible;
//! * **natural to program against** — simulated code blocks, sleeps and
//!   parks exactly like real systems code, with no async/await or explicit
//!   state machines;
//! * **cheap to reason about** — no data races on simulation state are
//!   possible because there is no true parallelism inside one simulation.
//!
//! ## Building blocks
//!
//! * [`Sim`] / [`Sim::spawn`] / [`Sim::run`] — the kernel.
//! * [`now`], [`sleep`], [`sleep_until`], [`yield_now`], [`park`],
//!   [`ProcHandle::unpark`] — process-context primitives.
//! * [`Completion`] — one-shot events with a known finish instant (models
//!   DMA / RDMA operation completion, `cudaStreamQuery`-style polling).
//! * [`Mailbox`] — timed message delivery (models wires and control paths).
//! * [`Semaphore`] — fair bounded resources (models buffer pools).
//!
//! ## Example
//!
//! ```
//! use sim_core::{Sim, SimDur, Mailbox};
//!
//! let sim = Sim::new();
//! let mb = Mailbox::new();
//! let tx = mb.clone();
//! sim.spawn("sender", move || {
//!     // A 1500-byte packet over a 1 GB/s link with 1 us latency:
//!     let arrival = sim_core::now() + SimDur::from_nanos(1_000 + 1_500);
//!     tx.send_at(arrival, vec![0u8; 1500]);
//! });
//! sim.spawn("receiver", move || {
//!     let pkt = mb.recv();
//!     assert_eq!(pkt.len(), 1500);
//!     assert_eq!(sim_core::now().as_nanos(), 2_500);
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]

mod completion;
pub mod component;
mod fiber;
pub mod instrument;
mod kernel;
pub mod lock;
mod mailbox;
pub mod san;
mod sync;
mod time;

pub use completion::Completion;
pub use component::{Component, ComponentStats, Waker};
pub use instrument::CallCounters;
pub use kernel::{
    cancel_timer, current_handle, current_pid, in_sim, now, park, schedule_at,
    schedule_cancellable_at, sleep, sleep_until, spawn, timers_live, yield_now, ExecMode,
    ProcHandle, ProcId, Sim, TimerId, WakeEvent,
};
pub use mailbox::{DeliveryStamp, Mailbox};
pub use san::{Invariant, ProtoView, Report, ReportKind, SanitizerMode};
pub use sync::Semaphore;
pub use time::{SimDur, SimTime};
