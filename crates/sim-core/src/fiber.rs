//! Stackful coroutine carriers for the event-driven kernel.
//!
//! In [`ExecMode::Event`](crate::ExecMode::Event) every simulated process
//! runs as a *fiber*: a heap-allocated stack plus a saved register context,
//! multiplexed onto the single kernel OS thread. The kernel switches into a
//! fiber exactly where it used to grant a condvar, and the fiber switches
//! back exactly where it used to park — the scheduling decisions, and hence
//! every `(virtual time, admission sequence)` pair, are bit-identical to the
//! legacy one-OS-thread-per-process mode. What changes is the cost: a fiber
//! switch is a register save/restore (~tens of nanoseconds) instead of two
//! condvar round-trips through the OS scheduler, and the OS thread count is
//! bounded (the kernel thread) independent of rank count.
//!
//! The context switch saves the System V callee-saved registers on the
//! suspending stack and swaps `rsp`; it is x86_64-only (the only target this
//! workspace builds for). On other architectures the kernel silently falls
//! back to thread carriers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::ptr;

/// Saved register context of a suspended fiber (or of the kernel carrier
/// while a fiber runs). Everything lives on the suspended stack; only the
/// stack pointer needs to be remembered.
#[repr(C)]
pub(crate) struct FiberCtx {
    rsp: *mut u8,
}

impl FiberCtx {
    fn null() -> Self {
        FiberCtx {
            rsp: ptr::null_mut(),
        }
    }
}

#[cfg(target_arch = "x86_64")]
std::arch::global_asm!(
    ".text",
    ".balign 16",
    // fn sim_core_fiber_switch(from: *mut FiberCtx, to: *const FiberCtx)
    //
    // Saves the callee-saved registers on the current stack, stores rsp into
    // `from`, loads rsp from `to`, restores the registers and returns on the
    // new stack. Caller-saved registers are dead across any call, so a plain
    // `call` into this function is a complete context switch.
    ".globl sim_core_fiber_switch",
    "sim_core_fiber_switch:",
    "push rbp",
    "push rbx",
    "push r12",
    "push r13",
    "push r14",
    "push r15",
    "mov [rdi], rsp",
    "mov rsp, [rsi]",
    "pop r15",
    "pop r14",
    "pop r13",
    "pop r12",
    "pop rbx",
    "pop rbp",
    "ret",
    // First-switch trampoline: a fresh fiber stack is initialized so that
    // the restore sequence above leaves the entry argument in r12 and the
    // entry function in r13, then `ret`s here.
    ".globl sim_core_fiber_start",
    "sim_core_fiber_start:",
    "mov rdi, r12",
    "jmp r13",
);

#[cfg(target_arch = "x86_64")]
extern "C" {
    fn sim_core_fiber_switch(from: *mut FiberCtx, to: *const FiberCtx);
    fn sim_core_fiber_start();
}

#[cfg(not(target_arch = "x86_64"))]
unsafe fn sim_core_fiber_switch(_from: *mut FiberCtx, _to: *const FiberCtx) {
    unreachable!("fiber carriers are x86_64-only; ExecMode::Event falls back to threads");
}

/// True when this build can run fiber carriers.
pub(crate) fn supported() -> bool {
    cfg!(target_arch = "x86_64")
}

thread_local! {
    /// While a fiber runs, points at the kernel-side context it must switch
    /// back into when it yields. Set by [`Fiber::switch_into`], read by
    /// [`switch_to_kernel`]. One cell suffices because exactly one fiber
    /// runs per OS thread at a time.
    static CARRIER: std::cell::Cell<*mut FiberCtx> = const { std::cell::Cell::new(ptr::null_mut()) };
}

pub(crate) struct FiberData {
    /// The process body plus all kernel bookkeeping (status transition to
    /// Done, live count, panic capture). Taken on first entry.
    body: Option<Box<dyn FnOnce() + Send>>,
    /// The fiber's own saved context; the entry function switches back
    /// through it when the body finishes.
    ctx: FiberCtx,
}

/// One stackful coroutine: an owned stack and a saved context. Boxed inside
/// the kernel's process table so its address is stable while frames on its
/// stack hold pointers into it.
///
/// SAFETY of `Send`: the saved context is raw stack memory. The fiber only
/// ever *runs* on whichever thread calls `Sim::run`, one at a time, and the
/// body it carries is itself `Send`; moving the suspended state between
/// threads is therefore sound (same contract as a parked OS thread's stack).
pub(crate) struct Fiber {
    data: Box<FiberData>,
    /// Owned stack memory; kept alive as long as the fiber may run.
    _stack: Box<[u8]>,
    /// The kernel has switched into this fiber at least once.
    pub(crate) started: bool,
    /// The body has returned (or unwound); the fiber must never be resumed.
    pub(crate) finished: bool,
}

unsafe impl Send for Fiber {}

unsafe extern "C" fn fiber_entry(data: *mut FiberData) -> ! {
    {
        let data = &mut *data;
        let body = data.body.take().expect("fiber entered twice");
        // The body is the thread-spawn closure verbatim: it already
        // catch_unwinds user code and records Done/panic in kernel state.
        // A second guard here keeps any panic from unwinding off the
        // fiber stack into the trampoline (which has no landing pad).
        let _ = catch_unwind(AssertUnwindSafe(body));
    }
    // Body finished: return control to the kernel for good.
    switch_to_kernel(&mut (*data).ctx);
    // Resuming a finished fiber is a kernel bug.
    unreachable!("finished fiber resumed");
}

/// Switch from a running fiber back to the kernel carrier, saving the fiber's
/// context into `own`. Returns when the kernel next resumes the fiber.
pub(crate) fn switch_to_kernel(own: &mut FiberCtx) {
    let carrier = CARRIER.with(|c| c.get());
    debug_assert!(!carrier.is_null(), "switch_to_kernel outside a fiber");
    unsafe { sim_core_fiber_switch(own, carrier) };
}

/// Switch from a process context (a fiber) back to the kernel via a raw
/// pointer to its [`FiberData`]. Used by the kernel's yield path.
pub(crate) fn yield_from(data: *mut FiberData) {
    unsafe { switch_to_kernel(&mut (*data).ctx) };
}

impl Fiber {
    /// Create a suspended fiber that will run `body` on its own `stack_size`-
    /// byte stack when first switched into.
    pub(crate) fn new(stack_size: usize, body: Box<dyn FnOnce() + Send>) -> Fiber {
        assert!(supported(), "fiber carriers are x86_64-only");
        let mut stack = vec![0u8; stack_size.max(16 * 1024)].into_boxed_slice();
        let mut data = Box::new(FiberData {
            body: Some(body),
            ctx: FiberCtx::null(),
        });
        unsafe {
            let base = stack.as_mut_ptr();
            let top = base.add(stack.len());
            // 16-byte align the logical stack top.
            let top16 = top.sub(top as usize % 16);
            // Layout (high to low): fake return slot, trampoline return
            // address, then the six callee-saved register slots the restore
            // sequence pops (rbp, rbx, r12=arg, r13=entry, r14, r15).
            let slots = top16 as *mut u64;
            *slots.sub(1) = 0; // fake caller return address
            *slots.sub(2) = sim_core_fiber_start as *const () as u64;
            *slots.sub(3) = 0; // rbp
            *slots.sub(4) = 0; // rbx
            *slots.sub(5) = &mut *data as *mut FiberData as u64; // r12 -> rdi
            *slots.sub(6) = fiber_entry as *const () as u64; // r13 -> jmp target
            *slots.sub(7) = 0; // r14
            *slots.sub(8) = 0; // r15
            data.ctx.rsp = slots.sub(8) as *mut u8;
        }
        Fiber {
            data,
            _stack: stack,
            started: false,
            finished: false,
        }
    }

    /// Raw pointer to this fiber's context data (stable: behind a Box).
    pub(crate) fn data_ptr(&mut self) -> *mut FiberData {
        &mut *self.data as *mut FiberData
    }

    /// Resume the fiber on the calling (kernel) thread until it yields back.
    ///
    /// # Safety
    /// Must only be called by the kernel run loop, with no kernel locks held,
    /// and never on a finished fiber.
    pub(crate) unsafe fn switch_into(data: *mut FiberData) {
        let mut carrier = FiberCtx::null();
        let prev = CARRIER.with(|c| c.replace(&mut carrier as *mut FiberCtx));
        sim_core_fiber_switch(&mut carrier, &(*data).ctx);
        CARRIER.with(|c| c.set(prev));
    }
}
