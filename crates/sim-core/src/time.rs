//! Virtual time: instants ([`SimTime`]) and durations ([`SimDur`]).
//!
//! Both are nanosecond-granular `u64`s. Keeping instants and durations as
//! distinct types catches the classic "added two timestamps" bug at compile
//! time, which matters in a codebase whose whole point is timing arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, measured in nanoseconds since simulation start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime {
    ns: u64,
}

/// A span of virtual time, in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDur {
    ns: u64,
}

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime { ns: 0 };

    /// Construct from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime { ns }
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.ns
    }

    /// Microseconds since the epoch, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.ns as f64 / 1_000.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.ns as f64 / 1e9
    }

    /// The duration since an earlier instant. Panics if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur {
            ns: self
                .ns
                .checked_sub(earlier.ns)
                .expect("SimTime::since: earlier instant is in the future"),
        }
    }

    /// Saturating difference: zero if `earlier` is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDur {
        SimDur {
            ns: self.ns.saturating_sub(earlier.ns),
        }
    }
}

impl SimDur {
    /// The zero-length duration.
    pub const ZERO: SimDur = SimDur { ns: 0 };

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDur { ns }
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDur { ns: us * 1_000 }
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDur { ns: ms * 1_000_000 }
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDur {
            ns: s * 1_000_000_000,
        }
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    /// Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "SimDur::from_secs_f64: invalid duration {s}"
        );
        SimDur {
            ns: (s * 1e9).round() as u64,
        }
    }

    /// Construct from fractional microseconds, rounding to the nearest
    /// nanosecond. Panics on negative or non-finite input.
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(
            us.is_finite() && us >= 0.0,
            "SimDur::from_micros_f64: invalid duration {us}"
        );
        SimDur {
            ns: (us * 1e3).round() as u64,
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.ns
    }

    /// Microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.ns as f64 / 1e3
    }

    /// Milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.ns as f64 / 1e6
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.ns as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDur) -> SimDur {
        SimDur {
            ns: self.ns.saturating_sub(rhs.ns),
        }
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime {
            ns: self
                .ns
                .checked_add(rhs.ns)
                .expect("SimTime overflow: simulation ran past u64 nanoseconds"),
        }
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        *self = *self + rhs;
    }
}

impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDur) -> SimTime {
        SimTime {
            ns: self
                .ns
                .checked_sub(rhs.ns)
                .expect("SimTime underflow: instant before the epoch"),
        }
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    fn sub(self, rhs: SimTime) -> SimDur {
        self.since(rhs)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur {
            ns: self.ns.checked_add(rhs.ns).expect("SimDur overflow"),
        }
    }
}

impl AddAssign for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        *self = *self + rhs;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur {
            ns: self
                .ns
                .checked_sub(rhs.ns)
                .expect("SimDur underflow: negative duration"),
        }
    }
}

impl SubAssign for SimDur {
    fn sub_assign(&mut self, rhs: SimDur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    fn mul(self, rhs: u64) -> SimDur {
        SimDur {
            ns: self.ns.checked_mul(rhs).expect("SimDur overflow"),
        }
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    fn div(self, rhs: u64) -> SimDur {
        SimDur { ns: self.ns / rhs }
    }
}

impl Sum for SimDur {
    fn sum<I: Iterator<Item = SimDur>>(iter: I) -> SimDur {
        iter.fold(SimDur::ZERO, Add::add)
    }
}

fn fmt_ns(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.6}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_ns(self.ns, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.ns, f)
    }
}

impl fmt::Debug for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.ns, f)
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ns(self.ns, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDur::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDur::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDur::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDur::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDur::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDur::from_micros(10);
        assert_eq!((t1 - t0).as_nanos(), 10_000);
        assert_eq!(t1.since(t0), SimDur::from_micros(10));
        assert_eq!(t0.saturating_since(t1), SimDur::ZERO);
        assert_eq!(t1 - SimDur::from_micros(4), t0 + SimDur::from_micros(6));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDur::from_micros(7);
        let b = SimDur::from_micros(3);
        assert_eq!(a + b, SimDur::from_micros(10));
        assert_eq!(a - b, SimDur::from_micros(4));
        assert_eq!(b * 4, SimDur::from_micros(12));
        assert_eq!(a / 7, SimDur::from_micros(1));
        assert_eq!(b.saturating_sub(a), SimDur::ZERO);
        let total: SimDur = [a, b, b].into_iter().sum();
        assert_eq!(total, SimDur::from_micros(13));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn negative_duration_panics() {
        let _ = SimDur::from_micros(1) - SimDur::from_micros(2);
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn since_future_panics() {
        let t1 = SimTime::ZERO + SimDur::from_micros(1);
        let _ = SimTime::ZERO.since(t1);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDur::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", SimDur::from_micros(4)), "4.000us");
        assert_eq!(format!("{}", SimDur::from_millis(250)), "250.000ms");
        assert_eq!(format!("{}", SimDur::from_secs(2)), "2.000000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
        assert!(SimDur::from_micros(1) < SimDur::from_millis(1));
    }
}
