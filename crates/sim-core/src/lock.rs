//! Thin wrappers over [`std::sync`] locks with a `parking_lot`-style API.
//!
//! The simulator's crates were written against `parking_lot` (guards from a
//! plain `lock()`, condvars that take `&mut` guards, no poisoning). To keep
//! the workspace free of external dependencies, this module provides the
//! same surface on top of the standard library: `lock()` never returns a
//! `Result`, and a panic while holding a lock does not poison it for later
//! users (the simulation kernel already propagates process panics itself).

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock that ignores poisoning.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner option is always `Some` except transiently inside
/// [`Condvar::wait`], which must move the std guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }
}

impl<T> Mutex<T> {
    /// Consume the lock, returning the inner value. Recovers the value if a
    /// previous holder panicked.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the calling OS thread. Recovers the guard
    /// if a previous holder panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable usable with [`MutexGuard`] by mutable reference.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// reacquiring the lock before returning (spurious wakeups possible).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already waiting");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn lock_survives_poisoning_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must stay usable after a panic");
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut started = m.lock();
            *started = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut started = m.lock();
        while !*started {
            cv.wait(&mut started);
        }
        t.join().unwrap();
        assert!(*started);
    }
}
