//! [`Mailbox`]: an unbounded, deterministic message queue with timed
//! delivery.
//!
//! Mailboxes carry simulated network packets and protocol control messages:
//! a sender computes the arrival instant from its cost model and calls
//! [`send_at`](Mailbox::send_at); the receiver blocks in
//! [`recv`](Mailbox::recv) until delivery.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::lock::Mutex;

use crate::component::Waker;
use crate::kernel::{self, ProcHandle};
use crate::san;
use crate::time::SimTime;

/// A sender-side happens-before stamp for a delivery performed later by a
/// third party (e.g. a delivery component draining a timed queue). Capture
/// with [`Mailbox::stamp`] in the sender's context, deliver with
/// [`Mailbox::send_stamped`].
pub struct DeliveryStamp {
    token: Option<san::SanToken>,
}

struct MbState<T> {
    /// Deliverable messages, each with the sanitizer happens-before token
    /// snapshotted from the sender at send time.
    ready: VecDeque<(T, Option<san::SanToken>)>,
    waiters: Vec<ProcHandle>,
    /// Stackless consumer: woken (coalesced) on every delivery, in addition
    /// to the parked-process waiters. See [`Mailbox::set_component_waker`].
    component: Option<Waker>,
}

/// An unbounded multi-producer multi-consumer queue in virtual time.
///
/// Cloning is shallow; all clones refer to the same queue.
pub struct Mailbox<T> {
    inner: Arc<Mutex<MbState<T>>>,
}

impl<T> Clone for Mailbox<T> {
    fn clone(&self) -> Self {
        Mailbox {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Mailbox<T> {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            inner: Arc::new(Mutex::new(MbState {
                ready: VecDeque::new(),
                waiters: Vec::new(),
                component: None,
            })),
        }
    }

    /// Number of messages currently deliverable.
    pub fn len(&self) -> usize {
        self.inner.lock().ready.len()
    }

    /// True if no message is currently deliverable.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().ready.is_empty()
    }

    fn deliver(inner: &Arc<Mutex<MbState<T>>>, msg: T, token: Option<san::SanToken>) {
        let (waiters, component) = {
            let mut st = inner.lock();
            st.ready.push_back((msg, token));
            (std::mem::take(&mut st.waiters), st.component.clone())
        };
        for w in waiters {
            w.unpark();
        }
        if let Some(c) = component {
            c.wake_now();
        }
    }

    /// Subscribe a stackless component to this mailbox: every delivery
    /// issues a coalesced [`Waker::wake_at`] for the delivery instant, in
    /// addition to unparking process waiters. One component per mailbox
    /// (replacing any previous subscription).
    pub fn set_component_waker(&self, w: Waker) {
        self.inner.lock().component = Some(w);
    }

    /// Capture the calling context's happens-before stamp for a delivery
    /// performed later via [`send_stamped`](Mailbox::send_stamped).
    pub fn stamp() -> DeliveryStamp {
        DeliveryStamp {
            token: san::channel_token(),
        }
    }

    /// Deliver `msg` now, carrying a stamp captured earlier in the sender's
    /// context. This is the delivery-component path: the component drains a
    /// timed queue on the kernel thread but synchronization edges must
    /// originate at the *sender*.
    pub fn send_stamped(&self, msg: T, stamp: DeliveryStamp) {
        Self::deliver(&self.inner, msg, stamp.token);
    }

    fn take(msg: T, token: Option<san::SanToken>) -> T {
        if let Some(t) = token {
            san::merge_token(&t);
        }
        msg
    }

    /// Deliver `msg` immediately (at the current virtual time).
    pub fn send(&self, msg: T) {
        Self::deliver(&self.inner, msg, san::channel_token());
    }

    /// Take the next message without blocking, if one is deliverable.
    pub fn try_recv(&self) -> Option<T> {
        let popped = self.inner.lock().ready.pop_front();
        popped.map(|(m, tok)| Self::take(m, tok))
    }

    /// Block until a message is deliverable and take it.
    pub fn recv(&self) -> T {
        loop {
            {
                let mut st = self.inner.lock();
                if let Some((m, tok)) = st.ready.pop_front() {
                    drop(st);
                    san::clear_blocked();
                    return Self::take(m, tok);
                }
                st.waiters.push(kernel::current_handle());
            }
            san::note_blocked(|| "mailbox recv".to_string());
            kernel::park("mailbox recv");
        }
    }

    /// Block until the mailbox is non-empty or `deadline` passes (if given).
    /// Returns true if a message is deliverable on return. Wakeups may be
    /// spurious with respect to *which* caller gets the message; callers
    /// should re-check with [`try_recv`](Mailbox::try_recv).
    ///
    /// This is the progress-engine idle wait: "sleep until either a packet
    /// arrives or the next known hardware completion instant".
    pub fn wait_nonempty_until(&self, deadline: Option<SimTime>) -> bool {
        {
            let mut st = self.inner.lock();
            if !st.ready.is_empty() {
                return true;
            }
            st.waiters.push(kernel::current_handle());
        }
        // The deadline timer deliberately outlives the wait: if a message
        // arrives first, the entry stays in the heap and fires a spurious
        // (harmless) unpark at the deadline, exactly as it always has.
        // Cancelling it here (via `schedule_cancellable_at`) would trim the
        // heap, but those stale wakes are part of the kernel's committed
        // scheduling history — removing them shifts run-queue admission
        // seqs and breaks bit-identity of recorded virtual-time baselines.
        if let Some(t) = deadline {
            let h = kernel::current_handle();
            kernel::schedule_at(t, move || h.unpark());
        }
        san::note_blocked(|| match deadline {
            Some(t) => format!("mailbox wait (until {t})"),
            None => "mailbox wait".to_string(),
        });
        kernel::park("mailbox wait");
        san::clear_blocked();
        !self.inner.lock().ready.is_empty()
    }
}

impl<T: Send + 'static> Mailbox<T> {
    /// Deliver `msg` at virtual instant `at` (clamped to now if in the past).
    /// Messages scheduled for the same instant arrive in send order.
    pub fn send_at(&self, at: SimTime, msg: T) {
        let inner = Arc::clone(&self.inner);
        let token = san::channel_token();
        kernel::schedule_at(at, move || Self::deliver(&inner, msg, token));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{now, sleep, Sim};
    use crate::time::SimDur;

    #[test]
    fn immediate_send_recv() {
        let sim = Sim::new();
        let mb = Mailbox::new();
        {
            let mb = mb.clone();
            sim.spawn("producer", move || {
                mb.send(1u32);
                mb.send(2);
            });
        }
        {
            let mb = mb.clone();
            sim.spawn("consumer", move || {
                assert_eq!(mb.recv(), 1);
                assert_eq!(mb.recv(), 2);
            });
        }
        sim.run();
    }

    #[test]
    fn timed_delivery_blocks_receiver() {
        let sim = Sim::new();
        let mb = Mailbox::new();
        {
            let mb = mb.clone();
            sim.spawn("producer", move || {
                mb.send_at(now() + SimDur::from_micros(25), "pkt");
            });
        }
        {
            let mb = mb.clone();
            sim.spawn("consumer", move || {
                assert_eq!(mb.recv(), "pkt");
                assert_eq!(now(), SimTime::from_nanos(25_000));
            });
        }
        sim.run();
    }

    #[test]
    fn same_instant_messages_arrive_in_send_order() {
        let sim = Sim::new();
        let mb = Mailbox::new();
        {
            let mb = mb.clone();
            sim.spawn("producer", move || {
                let at = now() + SimDur::from_micros(5);
                for i in 0..4u32 {
                    mb.send_at(at, i);
                }
            });
        }
        {
            let mb = mb.clone();
            sim.spawn("consumer", move || {
                for i in 0..4u32 {
                    assert_eq!(mb.recv(), i);
                }
            });
        }
        sim.run();
    }

    #[test]
    fn try_recv_does_not_block() {
        let sim = Sim::new();
        let mb: Mailbox<u32> = Mailbox::new();
        {
            let mb = mb.clone();
            sim.spawn("p", move || {
                assert_eq!(mb.try_recv(), None);
                mb.send_at(now() + SimDur::from_micros(1), 9);
                assert_eq!(mb.try_recv(), None); // not yet delivered
                sleep(SimDur::from_micros(1));
                assert_eq!(mb.try_recv(), Some(9));
                assert!(mb.is_empty());
            });
        }
        sim.run();
    }

    #[test]
    fn wait_nonempty_until_times_out() {
        let sim = Sim::new();
        let mb: Mailbox<u32> = Mailbox::new();
        {
            let mb = mb.clone();
            sim.spawn("p", move || {
                let deadline = now() + SimDur::from_micros(9);
                assert!(!mb.wait_nonempty_until(Some(deadline)));
                assert_eq!(now(), deadline);
            });
        }
        // Keep the sim alive past the deadline so the park isn't a deadlock.
        sim.spawn("anchor", || sleep(SimDur::from_micros(20)));
        sim.run();
    }

    #[test]
    fn wait_nonempty_until_wakes_on_arrival() {
        let sim = Sim::new();
        let mb: Mailbox<u32> = Mailbox::new();
        {
            let mb = mb.clone();
            sim.spawn("consumer", move || {
                let deadline = now() + SimDur::from_micros(100);
                assert!(mb.wait_nonempty_until(Some(deadline)));
                assert_eq!(now(), SimTime::from_nanos(5_000));
                assert_eq!(mb.try_recv(), Some(7));
            });
        }
        {
            let mb = mb.clone();
            sim.spawn("producer", move || {
                mb.send_at(now() + SimDur::from_micros(5), 7);
            });
        }
        sim.run();
    }

    #[test]
    fn idle_wait_keeps_stale_deadline_unpark() {
        // The deadline entry of a satisfied wait stays in the heap and
        // fires a spurious unpark at its deadline (see the comment in
        // `wait_nonempty_until`): the gauge counts it as live until then,
        // and recorded virtual-time baselines depend on that wake. This
        // pins the legacy discipline so nobody "fixes" it into a
        // bit-identity break.
        let sim = Sim::new();
        let mb: Mailbox<u32> = Mailbox::new();
        let probe = sim.clone();
        {
            let mb = mb.clone();
            sim.spawn("engine", move || {
                // Far deadline, but the message arrives first.
                let deadline = now() + SimDur::from_millis(100);
                assert!(mb.wait_nonempty_until(Some(deadline)));
                assert_eq!(mb.try_recv(), Some(1));
                assert_eq!(
                    probe.timers_live(),
                    1,
                    "the satisfied wait's deadline entry must stay armed"
                );
                // The stale entry wakes this process spuriously at the
                // deadline; park until it does.
                crate::kernel::park("awaiting stale unpark");
                assert_eq!(now().as_nanos(), deadline.as_nanos());
            });
        }
        {
            let mb = mb.clone();
            sim.spawn("producer", move || {
                mb.send_at(now() + SimDur::from_micros(5), 1);
            });
        }
        sim.run();
    }

    #[test]
    fn component_waker_fires_on_delivery() {
        use crate::component::Component;
        struct Drainer {
            mb: Mailbox<u32>,
            got: Arc<Mutex<Vec<(u64, u32)>>>,
        }
        impl Component for Drainer {
            fn tick(&mut self, now: SimTime) -> Option<SimTime> {
                while let Some(v) = self.mb.try_recv() {
                    self.got.lock().push((now.as_nanos(), v));
                }
                None
            }
        }
        let sim = Sim::new();
        let mb: Mailbox<u32> = Mailbox::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        mb.set_component_waker(sim.add_component(
            "drainer",
            Drainer {
                mb: mb.clone(),
                got: Arc::clone(&got),
            },
        ));
        {
            let mb = mb.clone();
            sim.spawn("producer", move || {
                mb.send(7);
                mb.send_at(now() + SimDur::from_micros(3), 9);
                sleep(SimDur::from_micros(10));
            });
        }
        sim.run();
        assert_eq!(*got.lock(), vec![(0, 7), (3_000, 9)]);
    }

    #[test]
    fn multiple_consumers_each_get_one() {
        let sim = Sim::new();
        let mb = Mailbox::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3u32 {
            let mb = mb.clone();
            let got = Arc::clone(&got);
            sim.spawn(format!("consumer{i}"), move || {
                let v = mb.recv();
                got.lock().push(v);
            });
        }
        {
            let mb = mb.clone();
            sim.spawn("producer", move || {
                for v in [10u32, 20, 30] {
                    mb.send_at(now() + SimDur::from_micros(u64::from(v)), v);
                }
            });
        }
        sim.run();
        let mut got = got.lock().clone();
        got.sort_unstable();
        assert_eq!(got, vec![10, 20, 30]);
    }
}
