//! [`Mailbox`]: an unbounded, deterministic message queue with timed
//! delivery.
//!
//! Mailboxes carry simulated network packets and protocol control messages:
//! a sender computes the arrival instant from its cost model and calls
//! [`send_at`](Mailbox::send_at); the receiver blocks in
//! [`recv`](Mailbox::recv) until delivery.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::lock::Mutex;

use crate::kernel::{self, ProcHandle};
use crate::san;
use crate::time::SimTime;

struct MbState<T> {
    /// Deliverable messages, each with the sanitizer happens-before token
    /// snapshotted from the sender at send time.
    ready: VecDeque<(T, Option<san::SanToken>)>,
    waiters: Vec<ProcHandle>,
}

/// An unbounded multi-producer multi-consumer queue in virtual time.
///
/// Cloning is shallow; all clones refer to the same queue.
pub struct Mailbox<T> {
    inner: Arc<Mutex<MbState<T>>>,
}

impl<T> Clone for Mailbox<T> {
    fn clone(&self) -> Self {
        Mailbox {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Mailbox<T> {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            inner: Arc::new(Mutex::new(MbState {
                ready: VecDeque::new(),
                waiters: Vec::new(),
            })),
        }
    }

    /// Number of messages currently deliverable.
    pub fn len(&self) -> usize {
        self.inner.lock().ready.len()
    }

    /// True if no message is currently deliverable.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().ready.is_empty()
    }

    fn deliver(inner: &Arc<Mutex<MbState<T>>>, msg: T, token: Option<san::SanToken>) {
        let waiters = {
            let mut st = inner.lock();
            st.ready.push_back((msg, token));
            std::mem::take(&mut st.waiters)
        };
        for w in waiters {
            w.unpark();
        }
    }

    fn take(msg: T, token: Option<san::SanToken>) -> T {
        if let Some(t) = token {
            san::merge_token(&t);
        }
        msg
    }

    /// Deliver `msg` immediately (at the current virtual time).
    pub fn send(&self, msg: T) {
        Self::deliver(&self.inner, msg, san::channel_token());
    }

    /// Take the next message without blocking, if one is deliverable.
    pub fn try_recv(&self) -> Option<T> {
        let popped = self.inner.lock().ready.pop_front();
        popped.map(|(m, tok)| Self::take(m, tok))
    }

    /// Block until a message is deliverable and take it.
    pub fn recv(&self) -> T {
        loop {
            {
                let mut st = self.inner.lock();
                if let Some((m, tok)) = st.ready.pop_front() {
                    drop(st);
                    san::clear_blocked();
                    return Self::take(m, tok);
                }
                st.waiters.push(kernel::current_handle());
            }
            san::note_blocked(|| "mailbox recv".to_string());
            kernel::park("mailbox recv");
        }
    }

    /// Block until the mailbox is non-empty or `deadline` passes (if given).
    /// Returns true if a message is deliverable on return. Wakeups may be
    /// spurious with respect to *which* caller gets the message; callers
    /// should re-check with [`try_recv`](Mailbox::try_recv).
    ///
    /// This is the progress-engine idle wait: "sleep until either a packet
    /// arrives or the next known hardware completion instant".
    pub fn wait_nonempty_until(&self, deadline: Option<SimTime>) -> bool {
        {
            let mut st = self.inner.lock();
            if !st.ready.is_empty() {
                return true;
            }
            st.waiters.push(kernel::current_handle());
        }
        if let Some(t) = deadline {
            let h = kernel::current_handle();
            kernel::schedule_at(t, move || h.unpark());
        }
        san::note_blocked(|| match deadline {
            Some(t) => format!("mailbox wait (until {t})"),
            None => "mailbox wait".to_string(),
        });
        kernel::park("mailbox wait");
        san::clear_blocked();
        !self.inner.lock().ready.is_empty()
    }
}

impl<T: Send + 'static> Mailbox<T> {
    /// Deliver `msg` at virtual instant `at` (clamped to now if in the past).
    /// Messages scheduled for the same instant arrive in send order.
    pub fn send_at(&self, at: SimTime, msg: T) {
        let inner = Arc::clone(&self.inner);
        let token = san::channel_token();
        kernel::schedule_at(at, move || Self::deliver(&inner, msg, token));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{now, sleep, Sim};
    use crate::time::SimDur;

    #[test]
    fn immediate_send_recv() {
        let sim = Sim::new();
        let mb = Mailbox::new();
        {
            let mb = mb.clone();
            sim.spawn("producer", move || {
                mb.send(1u32);
                mb.send(2);
            });
        }
        {
            let mb = mb.clone();
            sim.spawn("consumer", move || {
                assert_eq!(mb.recv(), 1);
                assert_eq!(mb.recv(), 2);
            });
        }
        sim.run();
    }

    #[test]
    fn timed_delivery_blocks_receiver() {
        let sim = Sim::new();
        let mb = Mailbox::new();
        {
            let mb = mb.clone();
            sim.spawn("producer", move || {
                mb.send_at(now() + SimDur::from_micros(25), "pkt");
            });
        }
        {
            let mb = mb.clone();
            sim.spawn("consumer", move || {
                assert_eq!(mb.recv(), "pkt");
                assert_eq!(now(), SimTime::from_nanos(25_000));
            });
        }
        sim.run();
    }

    #[test]
    fn same_instant_messages_arrive_in_send_order() {
        let sim = Sim::new();
        let mb = Mailbox::new();
        {
            let mb = mb.clone();
            sim.spawn("producer", move || {
                let at = now() + SimDur::from_micros(5);
                for i in 0..4u32 {
                    mb.send_at(at, i);
                }
            });
        }
        {
            let mb = mb.clone();
            sim.spawn("consumer", move || {
                for i in 0..4u32 {
                    assert_eq!(mb.recv(), i);
                }
            });
        }
        sim.run();
    }

    #[test]
    fn try_recv_does_not_block() {
        let sim = Sim::new();
        let mb: Mailbox<u32> = Mailbox::new();
        {
            let mb = mb.clone();
            sim.spawn("p", move || {
                assert_eq!(mb.try_recv(), None);
                mb.send_at(now() + SimDur::from_micros(1), 9);
                assert_eq!(mb.try_recv(), None); // not yet delivered
                sleep(SimDur::from_micros(1));
                assert_eq!(mb.try_recv(), Some(9));
                assert!(mb.is_empty());
            });
        }
        sim.run();
    }

    #[test]
    fn wait_nonempty_until_times_out() {
        let sim = Sim::new();
        let mb: Mailbox<u32> = Mailbox::new();
        {
            let mb = mb.clone();
            sim.spawn("p", move || {
                let deadline = now() + SimDur::from_micros(9);
                assert!(!mb.wait_nonempty_until(Some(deadline)));
                assert_eq!(now(), deadline);
            });
        }
        // Keep the sim alive past the deadline so the park isn't a deadlock.
        sim.spawn("anchor", || sleep(SimDur::from_micros(20)));
        sim.run();
    }

    #[test]
    fn wait_nonempty_until_wakes_on_arrival() {
        let sim = Sim::new();
        let mb: Mailbox<u32> = Mailbox::new();
        {
            let mb = mb.clone();
            sim.spawn("consumer", move || {
                let deadline = now() + SimDur::from_micros(100);
                assert!(mb.wait_nonempty_until(Some(deadline)));
                assert_eq!(now(), SimTime::from_nanos(5_000));
                assert_eq!(mb.try_recv(), Some(7));
            });
        }
        {
            let mb = mb.clone();
            sim.spawn("producer", move || {
                mb.send_at(now() + SimDur::from_micros(5), 7);
            });
        }
        sim.run();
    }

    #[test]
    fn multiple_consumers_each_get_one() {
        let sim = Sim::new();
        let mb = Mailbox::new();
        let got = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3u32 {
            let mb = mb.clone();
            let got = Arc::clone(&got);
            sim.spawn(format!("consumer{i}"), move || {
                let v = mb.recv();
                got.lock().push(v);
            });
        }
        {
            let mb = mb.clone();
            sim.spawn("producer", move || {
                for v in [10u32, 20, 30] {
                    mb.send_at(now() + SimDur::from_micros(u64::from(v)), v);
                }
            });
        }
        sim.run();
        let mut got = got.lock().clone();
        got.sort_unstable();
        assert_eq!(got, vec![10, 20, 30]);
    }
}
