//! FIFO counting semaphore in virtual time.
//!
//! Used for bounded resource pools (registered host staging buffers, device
//! temporary buffers): acquirers queue in order and block without consuming
//! virtual CPU.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::lock::Mutex;

use crate::kernel::{self, ProcHandle};
use crate::san;

struct SemState {
    permits: usize,
    /// FIFO of (ticket, handle, permits needed). Strict FIFO prevents
    /// starvation of large requests behind a stream of small ones.
    waiters: VecDeque<(u64, ProcHandle, usize)>,
    next_ticket: u64,
    /// Sanitizer: accumulated happens-before token from releasers; merged
    /// into each successful acquirer (release/acquire is a sync edge).
    san_set: san::SanToken,
}

/// A fair (strict FIFO) counting semaphore.
#[derive(Clone)]
pub struct Semaphore {
    inner: Arc<Mutex<SemState>>,
}

impl Semaphore {
    /// Create a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            inner: Arc::new(Mutex::new(SemState {
                permits,
                waiters: VecDeque::new(),
                next_ticket: 0,
                san_set: san::SanToken::default(),
            })),
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.inner.lock().permits
    }

    /// Acquire `n` permits without blocking, if possible. Respects FIFO
    /// fairness: fails if earlier acquirers are queued, even when permits
    /// are available.
    pub fn try_acquire(&self, n: usize) -> bool {
        let mut st = self.inner.lock();
        if st.waiters.is_empty() && st.permits >= n {
            st.permits -= n;
            let tok = st.san_set.clone();
            drop(st);
            san::merge_token(&tok);
            true
        } else {
            false
        }
    }

    /// Acquire `n` permits, blocking in virtual time until available.
    pub fn acquire(&self, n: usize) {
        let ticket = {
            let mut st = self.inner.lock();
            if st.waiters.is_empty() && st.permits >= n {
                st.permits -= n;
                let tok = st.san_set.clone();
                drop(st);
                san::merge_token(&tok);
                return;
            }
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.waiters.push_back((ticket, kernel::current_handle(), n));
            ticket
        };
        loop {
            san::note_blocked(|| {
                format!(
                    "semaphore acquire ({n} permit(s), {} available)",
                    self.inner.lock().permits
                )
            });
            kernel::park("semaphore acquire");
            san::clear_blocked();
            let st = self.inner.lock();
            // We are satisfied when our ticket has been removed by release().
            if !st.waiters.iter().any(|(t, _, _)| *t == ticket) {
                let tok = st.san_set.clone();
                drop(st);
                san::merge_token(&tok);
                return;
            }
            // Spurious wake (another waiter was satisfied); re-park.
            drop(st);
        }
    }

    /// Return `n` permits and wake now-satisfiable waiters in FIFO order.
    pub fn release(&self, n: usize) {
        let mut to_wake = Vec::new();
        let token = san::channel_token();
        {
            let mut st = self.inner.lock();
            if let Some(t) = token {
                st.san_set.merge(&t);
            }
            st.permits += n;
            while let Some(&(_, _, need)) = st.waiters.front() {
                if st.permits >= need {
                    st.permits -= need;
                    let (_, h, _) = st.waiters.pop_front().unwrap();
                    to_wake.push(h);
                } else {
                    break;
                }
            }
        }
        for h in to_wake {
            h.unpark();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{now, sleep, Sim};
    use crate::time::{SimDur, SimTime};
    use std::sync::Mutex as StdMutex;

    #[test]
    fn uncontended_acquire_is_immediate() {
        let sim = Sim::new();
        let sem = Semaphore::new(3);
        {
            let sem = sem.clone();
            sim.spawn("p", move || {
                sem.acquire(2);
                assert_eq!(sem.available(), 1);
                sem.release(2);
                assert_eq!(sem.available(), 3);
            });
        }
        sim.run();
    }

    #[test]
    fn blocked_acquirer_waits_for_release() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        {
            let sem = sem.clone();
            sim.spawn("holder", move || {
                sem.acquire(1);
                sleep(SimDur::from_micros(10));
                sem.release(1);
            });
        }
        {
            let sem = sem.clone();
            sim.spawn("waiter", move || {
                sleep(SimDur::from_micros(1)); // let the holder win
                sem.acquire(1);
                assert_eq!(now(), SimTime::from_nanos(10_000));
                sem.release(1);
            });
        }
        sim.run();
    }

    #[test]
    fn fifo_ordering_holds() {
        let sim = Sim::new();
        let sem = Semaphore::new(0);
        let order = Arc::new(StdMutex::new(Vec::new()));
        for i in 0..3u32 {
            let sem = sem.clone();
            let order = Arc::clone(&order);
            sim.spawn(format!("w{i}"), move || {
                sleep(SimDur::from_micros(u64::from(i) + 1)); // queue in order
                sem.acquire(1);
                order.lock().unwrap().push(i);
            });
        }
        {
            let sem = sem.clone();
            sim.spawn("releaser", move || {
                sleep(SimDur::from_micros(10));
                for _ in 0..3 {
                    sem.release(1);
                    sleep(SimDur::from_micros(1));
                }
            });
        }
        sim.run();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn large_request_blocks_later_small_ones() {
        let sim = Sim::new();
        let sem = Semaphore::new(2);
        let order = Arc::new(StdMutex::new(Vec::new()));
        {
            let sem = sem.clone();
            sim.spawn("hog", move || {
                sem.acquire(2); // take everything
                sleep(SimDur::from_micros(5));
                sem.release(2);
            });
        }
        {
            let sem = sem.clone();
            let order = Arc::clone(&order);
            sim.spawn("big", move || {
                sleep(SimDur::from_micros(1));
                sem.acquire(2);
                order.lock().unwrap().push("big");
                sem.release(2);
            });
        }
        {
            let sem = sem.clone();
            let order = Arc::clone(&order);
            sim.spawn("small", move || {
                sleep(SimDur::from_micros(2));
                assert!(!sem.try_acquire(1), "FIFO: small must not jump the queue");
                sem.acquire(1);
                order.lock().unwrap().push("small");
                sem.release(1);
            });
        }
        sim.run();
        assert_eq!(*order.lock().unwrap(), vec!["big", "small"]);
    }

    #[test]
    fn try_acquire_fails_cleanly() {
        let sim = Sim::new();
        let sem = Semaphore::new(1);
        {
            let sem = sem.clone();
            sim.spawn("p", move || {
                assert!(sem.try_acquire(1));
                assert!(!sem.try_acquire(1));
                sem.release(1);
                assert!(sem.try_acquire(1));
                sem.release(1);
            });
        }
        sim.run();
    }
}
