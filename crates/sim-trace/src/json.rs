//! A minimal JSON parser (the workspace is offline — no serde).
//!
//! Used to validate exported Chrome traces and to read checked-in benchmark
//! references (e.g. `results/BENCH_pipeline.json`) in regression tests.
//! Accepts strict JSON; numbers parse via `str::parse::<f64>`, which is
//! correctly rounded, so values printed with Rust's shortest-round-trip
//! float formatting compare bit-exactly after a parse round trip.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (first match), `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing content (other than
/// whitespace) is an error.
pub fn parse(src: &str) -> Result<JsonValue, String> {
    let b = src.as_bytes();
    let mut pos = 0;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'{' => parse_object(b, pos),
        b'[' => parse_array(b, pos),
        b'"' => Ok(JsonValue::Str(parse_string(b, pos)?)),
        b't' => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        b'f' => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        b'n' => parse_lit(b, pos, "null", JsonValue::Null),
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => Err(format!("unexpected byte '{}' at {}", c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = b.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        *pos += 4;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        // Surrogate pairs: join with the following \uXXXX.
                        let ch = if (0xd800..0xdc00).contains(&code) {
                            if b.get(*pos..*pos + 2) != Some(b"\\u") {
                                return Err("lone high surrogate".into());
                            }
                            *pos += 2;
                            let hex2 = b
                                .get(*pos..*pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            *pos += 4;
                            let low = u32::from_str_radix(hex2, 16)
                                .map_err(|_| format!("bad \\u escape '{hex2}'"))?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err("invalid low surrogate".into());
                            }
                            0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                        } else {
                            code
                        };
                        out.push(char::from_u32(ch).ok_or("invalid \\u code point")?);
                    }
                    _ => return Err(format!("bad escape '\\{}'", e as char)),
                }
            }
            _ => {
                // Copy the full UTF-8 sequence starting at c.
                let len = utf8_len(c)?;
                let bytes = b
                    .get(*pos - 1..*pos - 1 + len)
                    .ok_or("truncated UTF-8 sequence")?;
                let s = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
                out.push_str(s);
                *pos += len - 1;
            }
        }
    }
}

fn utf8_len(first: u8) -> Result<usize, String> {
    match first {
        0x00..=0x7f => Ok(1),
        0xc0..=0xdf => Ok(2),
        0xe0..=0xef => Ok(3),
        0xf0..=0xf7 => Ok(4),
        _ => Err(format!("invalid UTF-8 lead byte {first:#x}")),
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        out.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null}, "e": true}"#).unwrap();
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-300.0));
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_str),
            Some("x\ny")
        );
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&JsonValue::Null));
        assert_eq!(v.get("e").and_then(JsonValue::as_bool), Some(true));
    }

    #[test]
    fn float_display_round_trips_bit_exactly() {
        for x in [54.317, 0.1 + 0.2, 1e-12, 123456789.123456] {
            let doc = format!("{{\"v\": {x}}}");
            let v = parse(&doc).unwrap();
            assert_eq!(v.get("v").unwrap().as_f64(), Some(x));
        }
    }

    #[test]
    fn unicode_raw_and_escaped() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
        let v = parse("\"\\u00e9 \\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("é 😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
    }
}
