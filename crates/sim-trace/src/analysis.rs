//! Trace analyses: lane utilization, pipeline overlap, critical path.
//!
//! All analyses work on plain span lists so they can be fed either from a
//! live [`Recorder`] or from hand-constructed data in tests.

use sim_core::{SimDur, SimTime};

use crate::recorder::{EventKind, LaneId, LaneKind, Recorder};

/// A flattened span (one busy interval on one lane).
#[derive(Clone, Debug)]
pub struct SpanRec {
    /// Owning lane.
    pub lane: LaneId,
    /// Lane scope (e.g. `rank0`).
    pub scope: String,
    /// Lane name (e.g. `pack`, `tx`).
    pub lane_name: String,
    /// Lane kind.
    pub kind: LaneKind,
    /// Operation name.
    pub name: &'static str,
    /// Chunk index for pipeline stages.
    pub chunk: Option<usize>,
    /// Busy-interval start.
    pub start: SimTime,
    /// Busy-interval end.
    pub end: SimTime,
}

/// All spans retained by `rec`, flattened with their lane identity.
pub fn spans(rec: &Recorder) -> Vec<SpanRec> {
    let lanes = rec.lanes();
    rec.events()
        .into_iter()
        .filter_map(|ev| match ev.kind {
            EventKind::Span {
                name,
                chunk,
                start,
                end,
            } => {
                let meta = &lanes[ev.lane as usize];
                Some(SpanRec {
                    lane: ev.lane,
                    scope: meta.scope.clone(),
                    lane_name: meta.name.clone(),
                    kind: meta.kind,
                    name,
                    chunk,
                    start,
                    end,
                })
            }
            _ => None,
        })
        .collect()
}

/// Spans on [`LaneKind::Stage`] lanes only (the pipeline's per-chunk work).
pub fn stage_spans(rec: &Recorder) -> Vec<SpanRec> {
    spans(rec)
        .into_iter()
        .filter(|s| s.kind == LaneKind::Stage)
        .collect()
}

/// Total busy time of a set of intervals, with overlaps merged (an engine
/// processing back-to-back chunks is busy once, not twice).
pub fn busy_time(intervals: &[(SimTime, SimTime)]) -> SimDur {
    let mut iv: Vec<(SimTime, SimTime)> =
        intervals.iter().copied().filter(|(s, e)| e > s).collect();
    iv.sort_unstable();
    let mut total = SimDur::ZERO;
    let mut cur: Option<(SimTime, SimTime)> = None;
    for (s, e) in iv {
        cur = match cur {
            Some((cs, ce)) if s <= ce => Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                Some((s, e))
            }
            None => Some((s, e)),
        };
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Per-lane utilization over an observation window.
#[derive(Clone, Debug)]
pub struct LaneUtil {
    /// Lane scope.
    pub scope: String,
    /// Lane name.
    pub name: String,
    /// Lane kind.
    pub kind: LaneKind,
    /// Number of spans observed.
    pub spans: usize,
    /// Merged busy time, microseconds.
    pub busy_us: f64,
    /// Busy time divided by the window length (0.0 when the window is
    /// empty).
    pub utilization: f64,
}

/// The observation window covering every span: `(earliest start, latest
/// end)`, or `None` when there are no spans.
pub fn window(spans: &[SpanRec]) -> Option<(SimTime, SimTime)> {
    let first = spans.iter().map(|s| s.start).min()?;
    let last = spans.iter().map(|s| s.end).max()?;
    Some((first, last))
}

/// Utilization of every lane that recorded at least one span, measured over
/// the window spanning *all* given spans (so lanes are comparable).
pub fn lane_utilization(spans: &[SpanRec]) -> Vec<LaneUtil> {
    let Some((w0, w1)) = window(spans) else {
        return Vec::new();
    };
    let wall = (w1 - w0).as_micros_f64();
    let mut ids: Vec<LaneId> = spans.iter().map(|s| s.lane).collect();
    ids.sort_unstable();
    ids.dedup();
    ids.iter()
        .map(|&id| {
            let mine: Vec<&SpanRec> = spans.iter().filter(|s| s.lane == id).collect();
            let iv: Vec<(SimTime, SimTime)> = mine.iter().map(|s| (s.start, s.end)).collect();
            let busy = busy_time(&iv).as_micros_f64();
            LaneUtil {
                scope: mine[0].scope.clone(),
                name: mine[0].lane_name.clone(),
                kind: mine[0].kind,
                spans: mine.len(),
                busy_us: busy,
                utilization: if wall > 0.0 { busy / wall } else { 0.0 },
            }
        })
        .collect()
}

/// Pipeline overlap factor: the sum of per-lane merged busy times divided
/// by the wall window. A serialized pipeline gives ~1.0; perfect overlap
/// approaches the number of lanes that carry work.
pub fn overlap_factor(spans: &[SpanRec]) -> f64 {
    lane_utilization(spans).iter().map(|u| u.utilization).sum()
}

/// One step of a critical path.
#[derive(Clone, Debug, PartialEq)]
pub struct CritStep {
    /// Stage name (the lane name of the stage lane).
    pub stage: String,
    /// Chunk index.
    pub chunk: usize,
    /// Stage start.
    pub start: SimTime,
    /// Stage end.
    pub end: SimTime,
}

/// Critical path through a chunked pipeline, walked backward from the
/// latest-finishing stage span.
///
/// The dependence structure of the paper's pipeline: chunk `c`'s work in
/// stage `s` cannot finish before either its own previous stage
/// (`(s-1, c)`) or the previous chunk's work in the same stage
/// (`(s, c-1)`, the stage's engine is serial). At each step the walk moves
/// to whichever of the two predecessors finished *later* — the edge that
/// actually gated this span — and stops when neither exists.
///
/// `stage_order` lists the stage lane names in pipeline order (e.g.
/// `["pack", "d2h", "rdma", "h2d", "unpack"]`); spans on stage lanes not
/// listed are ignored. When several spans share a `(stage, chunk)` cell
/// (several transfers in one trace), the earliest is kept — feed one
/// transfer at a time for exact results.
pub fn critical_path(spans: &[SpanRec], stage_order: &[&str]) -> Vec<CritStep> {
    use std::collections::HashMap;
    // (stage index, chunk) -> span
    let mut cells: HashMap<(usize, usize), &SpanRec> = HashMap::new();
    for s in spans {
        let Some(si) = stage_order.iter().position(|&n| n == s.lane_name) else {
            continue;
        };
        let Some(c) = s.chunk else { continue };
        cells
            .entry((si, c))
            .and_modify(|cur| {
                if s.start < cur.start {
                    *cur = s;
                }
            })
            .or_insert(s);
    }
    // Sink: the latest-finishing cell.
    let Some((&sink, _)) = cells.iter().max_by_key(|(_, s)| (s.end, s.start)) else {
        return Vec::new();
    };
    let mut path = Vec::new();
    let mut cur = sink;
    loop {
        let span = cells[&cur];
        path.push(CritStep {
            stage: span.lane_name.clone(),
            chunk: cur.1,
            start: span.start,
            end: span.end,
        });
        let (si, c) = cur;
        let prev_stage = si.checked_sub(1).and_then(|p| cells.get(&(p, c)).copied());
        let prev_chunk = c.checked_sub(1).and_then(|p| cells.get(&(si, p)).copied());
        cur = match (prev_stage, prev_chunk) {
            (Some(a), Some(b)) => {
                if a.end >= b.end {
                    (si - 1, c)
                } else {
                    (si, c - 1)
                }
            }
            (Some(_), None) => (si - 1, c),
            (None, Some(_)) => (si, c - 1),
            (None, None) => break,
        };
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    /// The satellite's constructed two-chunk transfer: five stages with
    /// hand-computed critical path, overlap factor and lane utilizations.
    fn two_chunk_recorder() -> Recorder {
        let r = Recorder::new();
        let stages = [
            ("pack", [(0, 10), (10, 20)]),
            ("d2h", [(10, 18), (20, 28)]),
            ("rdma", [(18, 24), (28, 34)]),
            ("h2d", [(24, 32), (34, 42)]),
            ("unpack", [(32, 40), (42, 52)]),
        ];
        for (name, chunks) in stages {
            let lane = r.lane("rank0", name, LaneKind::Stage);
            for (c, (s, e)) in chunks.iter().enumerate() {
                lane.chunk_span(name, Some(c), t(*s), t(*e));
            }
        }
        r
    }

    #[test]
    fn two_chunk_critical_path_is_hand_computable() {
        let r = two_chunk_recorder();
        let sp = stage_spans(&r);
        let path = critical_path(&sp, &["pack", "d2h", "rdma", "h2d", "unpack"]);
        let expect = [
            ("pack", 0, 0, 10),
            ("pack", 1, 10, 20),
            ("d2h", 1, 20, 28),
            ("rdma", 1, 28, 34),
            ("h2d", 1, 34, 42),
            ("unpack", 1, 42, 52),
        ];
        assert_eq!(path.len(), expect.len());
        for (got, (stage, chunk, s, e)) in path.iter().zip(expect) {
            assert_eq!(got.stage, stage);
            assert_eq!(got.chunk, chunk);
            assert_eq!(got.start, t(s));
            assert_eq!(got.end, t(e));
        }
    }

    #[test]
    fn two_chunk_overlap_and_utilization_are_hand_computable() {
        let r = two_chunk_recorder();
        let sp = stage_spans(&r);
        // Window 0..52 us. Busy: pack 20, d2h 16, rdma 12, h2d 16, unpack 18.
        let utils = lane_utilization(&sp);
        assert_eq!(utils.len(), 5);
        let busy: Vec<f64> = utils.iter().map(|u| u.busy_us).collect();
        assert_eq!(busy, vec![20.0, 16.0, 12.0, 16.0, 18.0]);
        for u in &utils {
            assert_eq!(u.spans, 2);
            assert!((u.utilization - u.busy_us / 52.0).abs() < 1e-12);
        }
        let overlap = overlap_factor(&sp);
        assert!(((20.0 + 16.0 + 12.0 + 16.0 + 18.0) / 52.0 - overlap).abs() < 1e-12);
    }

    #[test]
    fn busy_time_merges_overlapping_intervals() {
        let iv = [
            (t(0), t(10)),
            (t(5), t(15)), // overlaps previous -> merged to 0..15
            (t(20), t(30)),
            (t(30), t(35)), // touching -> merged to 20..35
            (t(40), t(40)), // empty -> ignored
        ];
        assert_eq!(busy_time(&iv), SimDur::from_micros(30));
    }

    #[test]
    fn critical_path_handles_missing_stages() {
        // A contiguous transfer has no pack/unpack: the walk must still
        // terminate and cover the stages that exist.
        let r = Recorder::new();
        let d2h = r.lane("rank0", "d2h", LaneKind::Stage);
        let rdma = r.lane("rank0", "rdma", LaneKind::Stage);
        d2h.chunk_span("d2h", Some(0), t(0), t(5));
        rdma.chunk_span("rdma", Some(0), t(5), t(9));
        let path = critical_path(&stage_spans(&r), &["pack", "d2h", "rdma", "h2d", "unpack"]);
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].stage, "d2h");
        assert_eq!(path[1].stage, "rdma");
    }

    #[test]
    fn empty_trace_yields_empty_analyses() {
        let r = Recorder::new();
        let sp = stage_spans(&r);
        assert!(lane_utilization(&sp).is_empty());
        assert_eq!(overlap_factor(&sp), 0.0);
        assert!(critical_path(&sp, &["pack"]).is_empty());
    }
}
