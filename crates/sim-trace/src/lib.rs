//! # sim-trace — virtual-time tracing & metrics
//!
//! A structured observability layer for the simulator: spans, instants and
//! gauge samples recorded against the **virtual** clock, organized into
//! *lanes* — one lane per modeled resource (a GPU copy engine, an HCA
//! transmit engine, a rank's protocol engine, a staging-pool occupancy
//! gauge) or per pipeline *stage* (pack → D2H → RDMA → H2D → unpack, the
//! paper's Figure 3).
//!
//! Design constraints, in order:
//!
//! 1. **Tracing must never perturb simulated time.** Recording an event
//!    does host work only — it never sleeps, never blocks on another
//!    simulated process, and never touches the virtual clock beyond reading
//!    it. A run with tracing enabled is bit-identical (in virtual time) to
//!    the same run with tracing disabled.
//! 2. **Disabled tracing is (almost) free.** Every emission site checks one
//!    relaxed atomic load before doing anything else; a disabled
//!    [`Recorder`] costs one branch per event.
//! 3. **Bounded memory.** Events land in a fixed-capacity ring buffer;
//!    overflow overwrites the oldest events and is counted in
//!    [`Recorder::dropped`] so analyses can refuse truncated traces.
//!
//! On top of the recording layer:
//!
//! * [`chrome`] exports a Chrome `trace_event` JSON file loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//! * [`analysis`] computes per-lane utilization, the pipeline overlap
//!   factor, and the critical path through a chunked transfer's stages.
//! * [`json`] is a minimal JSON parser used to validate exported traces and
//!   to read checked-in benchmark references (the workspace is offline; no
//!   serde).

#![warn(missing_docs)]

pub mod analysis;
pub mod chrome;
pub mod json;
mod recorder;

pub use chrome::chrome_trace;
pub use recorder::{Event, EventKind, Lane, LaneId, LaneKind, LaneMeta, Recorder};
