//! The recording layer: [`Recorder`], [`Lane`] handles and the event ring.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use sim_core::lock::Mutex;
use sim_core::{CallCounters, Completion, SimTime};

/// Index of a lane within its recorder (dense, assigned at registration).
pub type LaneId = u32;

/// What kind of resource a lane models (drives export categories and
/// analysis filters).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LaneKind {
    /// A GPU engine queue (H2D/D2H copy engines, device-internal DMA,
    /// compute).
    GpuEngine,
    /// An HCA transmit engine (serialization onto the wire).
    Hca,
    /// A node's intra-node shared-memory copy engine.
    Shm,
    /// A rank's MPI progress/protocol engine (state transitions, retries).
    Proto,
    /// A pipeline stage carrying per-chunk spans (pack, d2h, rdma, h2d,
    /// unpack).
    Stage,
    /// An occupancy gauge (vbuf pools, tuner decisions).
    Gauge,
}

impl LaneKind {
    /// Short category label (used by the Chrome exporter).
    pub fn label(self) -> &'static str {
        match self {
            LaneKind::GpuEngine => "gpu",
            LaneKind::Hca => "hca",
            LaneKind::Shm => "shm",
            LaneKind::Proto => "proto",
            LaneKind::Stage => "stage",
            LaneKind::Gauge => "gauge",
        }
    }
}

/// Identity of one lane.
#[derive(Clone, Debug)]
pub struct LaneMeta {
    /// Owning resource group (e.g. `rank0`, `gpu1`, `hca0`). Becomes the
    /// "process" in Chrome exports.
    pub scope: String,
    /// Lane name within the scope (e.g. `d2h`, `pack`, `tx`). Becomes the
    /// "thread" in Chrome exports.
    pub name: String,
    /// Resource kind.
    pub kind: LaneKind,
}

/// Payload of one recorded event.
#[derive(Clone, Debug)]
pub enum EventKind {
    /// An interval during which the lane's resource was busy.
    Span {
        /// Operation name (static so recording allocates nothing).
        name: &'static str,
        /// Chunk index, for per-chunk pipeline stages.
        chunk: Option<usize>,
        /// Busy-interval start.
        start: SimTime,
        /// Busy-interval end.
        end: SimTime,
    },
    /// A point event (a retry fired, a fault was injected, a protocol
    /// transition happened).
    Instant {
        /// Event name.
        name: &'static str,
        /// When it happened.
        at: SimTime,
    },
    /// A sampled value (pool occupancy, chosen chunk size).
    Gauge {
        /// Sample instant.
        at: SimTime,
        /// Sampled value.
        value: i64,
    },
}

/// One recorded event: a payload on a lane.
#[derive(Clone, Debug)]
pub struct Event {
    /// The lane the event belongs to.
    pub lane: LaneId,
    /// The payload.
    pub kind: EventKind,
}

struct State {
    lanes: Vec<LaneMeta>,
    ring: VecDeque<Event>,
    cap: usize,
    dropped: u64,
    counters: Vec<(String, CallCounters)>,
}

struct Inner {
    enabled: AtomicBool,
    state: Mutex<State>,
}

/// A cloneable handle to one trace buffer. Clones share the same ring.
///
/// A recorder is either *enabled* (events are kept) or *disabled* (every
/// emission is a no-op behind a single atomic load). Lanes can be
/// registered either way, so wiring code never branches on the mode.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

/// Default ring capacity (events). Small structs; ~24 MB worst case.
const DEFAULT_CAP: usize = 1 << 19;

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// An enabled recorder with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAP)
    }

    /// An enabled recorder keeping at most `cap` events (oldest dropped
    /// first; see [`dropped`](Self::dropped)).
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "Recorder capacity must be positive");
        Recorder {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(true),
                state: Mutex::new(State {
                    lanes: Vec::new(),
                    ring: VecDeque::new(),
                    cap,
                    dropped: 0,
                    counters: Vec::new(),
                }),
            }),
        }
    }

    /// A disabled recorder: every emission no-ops after one atomic load.
    pub fn off() -> Self {
        let r = Self::with_capacity(1);
        r.inner.enabled.store(false, Ordering::Relaxed);
        r
    }

    /// Whether events are currently being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Register (or look up) the lane `scope/name`. Idempotent: the same
    /// pair always maps to the same [`LaneId`] (the first registration's
    /// `kind` wins). Registration is rare (per resource, not per event), so
    /// it does a linear scan instead of keeping an index.
    pub fn lane(&self, scope: &str, name: &str, kind: LaneKind) -> Lane {
        let mut st = self.inner.state.lock();
        let id = match st
            .lanes
            .iter()
            .position(|l| l.scope == scope && l.name == name)
        {
            Some(i) => i as LaneId,
            None => {
                st.lanes.push(LaneMeta {
                    scope: scope.to_string(),
                    name: name.to_string(),
                    kind,
                });
                (st.lanes.len() - 1) as LaneId
            }
        };
        Lane {
            rec: self.clone(),
            id,
        }
    }

    fn push(&self, ev: Event) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.inner.state.lock();
        if st.ring.len() == st.cap {
            st.ring.pop_front();
            st.dropped += 1;
        }
        st.ring.push_back(ev);
    }

    /// Snapshot of all retained events, in recording order.
    pub fn events(&self) -> Vec<Event> {
        self.inner.state.lock().ring.iter().cloned().collect()
    }

    /// Snapshot of the lane table, indexed by [`LaneId`].
    pub fn lanes(&self) -> Vec<LaneMeta> {
        self.inner.state.lock().lanes.clone()
    }

    /// Events evicted by ring overflow since the last
    /// [`clear`](Self::clear). Analyses should refuse truncated traces.
    pub fn dropped(&self) -> u64 {
        self.inner.state.lock().dropped
    }

    /// Drop all retained events (lanes and registered counters survive).
    pub fn clear(&self) {
        let mut st = self.inner.state.lock();
        st.ring.clear();
        st.dropped = 0;
    }

    /// Register a [`CallCounters`] set under `prefix` so one
    /// [`metrics`](Self::metrics) call snapshots every counter in the run —
    /// per-GPU CUDA call counts, per-rank MPI/retry counters, the global
    /// plan-cache statistics — in one namespace.
    ///
    /// Idempotent for clones of an already-registered set. Registering a
    /// *different* set under a taken prefix panics: that is two objects
    /// fighting over one metrics name (typically two worlds in one process
    /// both claiming `rank0`), and silently keeping the first would drop
    /// the second's counters from every snapshot. Namespace per-job
    /// registrations instead (e.g. a `job{k}.` scope prefix).
    pub fn register_counters(&self, prefix: &str, counters: &CallCounters) {
        let mut st = self.inner.state.lock();
        if let Some((_, existing)) = st.counters.iter().find(|(p, _)| p == prefix) {
            assert!(
                existing.same_counters(counters),
                "metrics-registry collision: prefix '{prefix}' is already \
                 registered with a different counter set; give each job its \
                 own namespace (e.g. 'job{{k}}.{prefix}')"
            );
            return;
        }
        st.counters.push((prefix.to_string(), counters.clone()));
    }

    /// Unified snapshot of every registered counter set, keyed
    /// `prefix.counter`.
    pub fn metrics(&self) -> BTreeMap<String, u64> {
        let regs: Vec<(String, CallCounters)> = self.inner.state.lock().counters.clone();
        let mut out = BTreeMap::new();
        for (prefix, c) in regs {
            for (k, v) in c.snapshot() {
                out.insert(format!("{prefix}.{k}"), v);
            }
        }
        out
    }
}

/// A cheap handle for emitting onto one lane. Cloning is one `Arc` bump.
#[derive(Clone)]
pub struct Lane {
    rec: Recorder,
    id: LaneId,
}

impl Lane {
    /// This lane's id within its recorder.
    pub fn id(&self) -> LaneId {
        self.id
    }

    /// Record a busy interval `[start, end]`.
    pub fn span(&self, name: &'static str, start: SimTime, end: SimTime) {
        self.chunk_span(name, None, start, end);
    }

    /// Record a busy interval tagged with a chunk index.
    pub fn chunk_span(
        &self,
        name: &'static str,
        chunk: Option<usize>,
        start: SimTime,
        end: SimTime,
    ) {
        if !self.rec.is_enabled() {
            return;
        }
        self.rec.push(Event {
            lane: self.id,
            kind: EventKind::Span {
                name,
                chunk,
                start,
                end,
            },
        });
    }

    /// Record the busy interval of a finished [`Completion`]: the span runs
    /// from the completion's recorded start (falling back to the finish
    /// instant for completions without one) to its finish time. Panics if
    /// the completion has no assigned finish time.
    pub fn comp_span(&self, name: &'static str, chunk: Option<usize>, comp: &Completion) {
        if !self.rec.is_enabled() {
            return;
        }
        let end = comp
            .done_at()
            .expect("comp_span requires an assigned finish time");
        let start = comp.started_at().unwrap_or(end);
        self.chunk_span(name, chunk, start, end);
    }

    /// Record a point event at `at`.
    pub fn instant(&self, name: &'static str, at: SimTime) {
        if !self.rec.is_enabled() {
            return;
        }
        self.rec.push(Event {
            lane: self.id,
            kind: EventKind::Instant { name, at },
        });
    }

    /// Record a point event at the current virtual time. Must be called
    /// from inside a simulation process.
    pub fn instant_now(&self, name: &'static str) {
        if !self.rec.is_enabled() {
            return;
        }
        self.instant(name, sim_core::now());
    }

    /// Record a gauge sample at the current virtual time. Must be called
    /// from inside a simulation process.
    pub fn gauge_now(&self, value: i64) {
        if !self.rec.is_enabled() {
            return;
        }
        self.rec.push(Event {
            lane: self.id,
            kind: EventKind::Gauge {
                at: sim_core::now(),
                value,
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_keeps_nothing() {
        let r = Recorder::off();
        let lane = r.lane("rank0", "pack", LaneKind::Stage);
        lane.span("pack", SimTime::from_nanos(1), SimTime::from_nanos(2));
        lane.instant("x", SimTime::from_nanos(3));
        assert!(!r.is_enabled());
        assert!(r.events().is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn lanes_are_interned_per_scope_and_name() {
        let r = Recorder::new();
        let a = r.lane("rank0", "pack", LaneKind::Stage);
        let b = r.lane("rank0", "pack", LaneKind::Stage);
        let c = r.lane("rank1", "pack", LaneKind::Stage);
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_eq!(r.lanes().len(), 2);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let r = Recorder::with_capacity(2);
        let lane = r.lane("s", "l", LaneKind::Proto);
        for i in 0..5u64 {
            lane.instant("tick", SimTime::from_nanos(i));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(r.dropped(), 3);
        match evs[0].kind {
            EventKind::Instant { at, .. } => assert_eq!(at, SimTime::from_nanos(3)),
            _ => panic!("expected instant"),
        }
        r.clear();
        assert!(r.events().is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn metrics_unify_registered_counters() {
        let r = Recorder::new();
        let a = CallCounters::new();
        let b = CallCounters::new();
        a.record("cudaMemcpy");
        a.record("cudaMemcpy");
        b.record("retry.rts");
        r.register_counters("gpu0", &a);
        r.register_counters("gpu0", &a); // idempotent
        r.register_counters("rank1", &b);
        let m = r.metrics();
        assert_eq!(m.get("gpu0.cudaMemcpy"), Some(&2));
        assert_eq!(m.get("rank1.retry.rts"), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
