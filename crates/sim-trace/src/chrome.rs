//! Chrome `trace_event` export: one JSON object loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Mapping: each lane *scope* becomes a process (named via `M` metadata
//! events), each lane becomes a thread within its scope. Spans export as
//! complete events (`ph: "X"`, microsecond `ts`/`dur`), instants as `ph:
//! "i"` (thread scope) and gauges as counter events (`ph: "C"`).

use std::fmt::Write as _;

use crate::recorder::{EventKind, Recorder};

fn escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render every retained event as a Chrome `trace_event` JSON document.
pub fn chrome_trace(rec: &Recorder) -> String {
    let lanes = rec.lanes();
    // Stable pid per scope, tid per lane (dense, in lane-table order).
    let mut scopes: Vec<&str> = Vec::new();
    let mut pid_of = Vec::with_capacity(lanes.len());
    let mut tid_of = Vec::with_capacity(lanes.len());
    for meta in &lanes {
        let pid = match scopes.iter().position(|s| *s == meta.scope) {
            Some(i) => i,
            None => {
                scopes.push(&meta.scope);
                scopes.len() - 1
            }
        };
        pid_of.push(pid + 1); // pids start at 1 (0 renders oddly)
        tid_of.push(
            lanes[..pid_of.len() - 1]
                .iter()
                .filter(|l| l.scope == meta.scope)
                .count()
                + 1,
        );
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    for (i, scope) in scopes.iter().enumerate() {
        let mut name = String::new();
        escape(scope, &mut name);
        push(
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}",
                i + 1
            ),
            &mut out,
            &mut first,
        );
    }
    for (id, meta) in lanes.iter().enumerate() {
        let mut name = String::new();
        escape(&meta.name, &mut name);
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"{name}\"}}}}",
                pid_of[id], tid_of[id]
            ),
            &mut out,
            &mut first,
        );
    }
    for ev in rec.events() {
        let id = ev.lane as usize;
        let (pid, tid) = (pid_of[id], tid_of[id]);
        let cat = lanes[id].kind.label();
        let line = match ev.kind {
            EventKind::Span {
                name,
                chunk,
                start,
                end,
            } => {
                let mut n = String::new();
                escape(name, &mut n);
                let args = match chunk {
                    Some(c) => format!("{{\"chunk\":{c}}}"),
                    None => "{}".to_string(),
                };
                format!(
                    "{{\"name\":\"{n}\",\"cat\":\"{cat}\",\"ph\":\"X\",\
                     \"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{args}}}",
                    start.as_micros_f64(),
                    (end - start).as_micros_f64()
                )
            }
            EventKind::Instant { name, at } => {
                let mut n = String::new();
                escape(name, &mut n);
                format!(
                    "{{\"name\":\"{n}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{},\"pid\":{pid},\"tid\":{tid}}}",
                    at.as_micros_f64()
                )
            }
            EventKind::Gauge { at, value } => {
                let mut n = String::new();
                escape(&lanes[id].name, &mut n);
                format!(
                    "{{\"name\":\"{n}\",\"cat\":\"{cat}\",\"ph\":\"C\",\
                     \"ts\":{},\"pid\":{pid},\"args\":{{\"value\":{value}}}}}",
                    at.as_micros_f64()
                )
            }
        };
        push(line, &mut out, &mut first);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::recorder::{LaneKind, Recorder};
    use sim_core::SimTime;

    #[test]
    fn export_parses_and_carries_events() {
        let r = Recorder::new();
        let pack = r.lane("rank0", "pack", LaneKind::Stage);
        let pool = r.lane("rank0", "send_pool", LaneKind::Gauge);
        pack.chunk_span(
            "pack",
            Some(0),
            SimTime::from_nanos(500),
            SimTime::from_nanos(2500),
        );
        pack.instant("retry.rts", SimTime::from_nanos(3000));
        {
            // Gauge outside a sim process: record via the low-level path.
            let _ = &pool;
        }
        let doc = chrome_trace(&r);
        let v = json::parse(&doc).expect("exported trace must be valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(json::JsonValue::as_arr)
            .expect("traceEvents array");
        // 1 process + 2 threads metadata + 1 span + 1 instant.
        assert_eq!(events.len(), 5);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(json::JsonValue::as_str) == Some("X"))
            .expect("complete event");
        assert_eq!(
            span.get("name").and_then(json::JsonValue::as_str),
            Some("pack")
        );
        assert_eq!(span.get("ts").and_then(json::JsonValue::as_f64), Some(0.5));
        assert_eq!(span.get("dur").and_then(json::JsonValue::as_f64), Some(2.0));
    }

    #[test]
    fn names_are_escaped() {
        let r = Recorder::new();
        let lane = r.lane("scope\"x", "t\\d", LaneKind::Proto);
        lane.instant("i", SimTime::ZERO);
        let doc = chrome_trace(&r);
        assert!(json::parse(&doc).is_ok(), "escaping must keep JSON valid");
    }
}
