//! # ib-sim — InfiniBand verbs / RDMA simulator
//!
//! Models the interconnect of the paper's testbed (Mellanox QDR HCAs, OFED
//! 1.5.1): per-node HCAs with a transmit-engine occupancy model, reliable
//! in-order two-sided messaging, memory registration, and one-sided RDMA
//! writes whose completion is *not* visible to the remote CPU — the exact
//! verbs surface the MVAPICH2 rendezvous protocol (RTS / CTS / RDMA write /
//! FIN) is built on.
//!
//! ```
//! use ib_sim::{Fabric, NetModel};
//! use hostmem::HostBuf;
//!
//! let sim = sim_core::Sim::new();
//! let fabric = Fabric::new(2, NetModel::qdr());
//! let vbuf = HostBuf::alloc(4096);
//! let rkey = fabric.nic(1).register(&vbuf);
//! let nic0 = fabric.nic(0);
//! sim.spawn("rank0", move || {
//!     let chunk = HostBuf::from_vec(vec![9u8; 4096]);
//!     nic0.register(&chunk);
//!     nic0.rdma_write(1, rkey, 0, &chunk.base(), 4096).wait();
//!     nic0.send_ctrl(1, Box::new("fin"));
//! });
//! let nic1 = fabric.nic(1);
//! sim.spawn("rank1", move || {
//!     let fin = nic1.mailbox().recv();
//!     assert_eq!(*fin.payload.downcast::<&str>().unwrap(), "fin");
//!     assert_eq!(vbuf.read(0, 4096), vec![9u8; 4096]); // data landed first
//! });
//! sim.run();
//! ```

#![warn(missing_docs)]

mod fabric;
mod fault;
mod job;
mod model;
pub mod scheduler;
mod topology;

pub use fabric::{Fabric, MrKey, Nic, Packet, RegError, SgEntry};
pub use fault::FaultSpec;
pub use job::{BindError, JobQos, JobSpec};
pub use model::{NetModel, ShmModel};
pub use scheduler::{CtrlAction, CtrlPoint, DeliveryScheduler, FifoScheduler};
pub use topology::Topology;
