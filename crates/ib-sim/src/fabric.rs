//! The fabric: HCAs, reliable-connected messaging and RDMA writes.
//!
//! What is modeled, and why it is enough for the paper's protocol:
//!
//! * **SEND/RECV** ([`Nic::send`]) — reliable, in-order delivery of typed
//!   messages into the destination's mailbox. Used for MPI envelopes,
//!   eager payloads and the RTS/CTS/FIN control traffic of rendezvous
//!   protocols.
//! * **RDMA WRITE** ([`Nic::rdma_write`]) — one-sided placement of bytes
//!   into a *registered* remote host region, invisible to the remote CPU
//!   (no completion is delivered there; the protocol above announces
//!   completion with its own FIN message, exactly as MVAPICH2 does).
//! * **Registration** ([`Nic::register`]) — RDMA targets and sources must
//!   be registered (which pins them); unregistered access panics, which is
//!   the simulator's equivalent of a protection fault on the HCA.
//!
//! Timing: each HCA has one transmit engine. An operation occupies the
//! engine for `bytes/bw`, and the payload lands `wire_lat` after it leaves
//! the engine. Because every message from one node serializes through that
//! engine and latency is constant, delivery from any source is in posting
//! order — the in-order guarantee of an IB reliable-connected QP.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hostmem::{HostBuf, HostPtr};
use sim_core::instrument;
use sim_core::lock::Mutex;
use sim_core::san;
use sim_core::{Completion, Mailbox, SimDur, SimTime};
use sim_trace::{Lane, LaneKind, Recorder};

use crate::fault::{FaultSpec, FaultState};
use crate::model::NetModel;

/// A message delivered to a node's mailbox.
pub struct Packet {
    /// Sending node id.
    pub src: usize,
    /// Number of bytes this packet occupied on the wire (control header or
    /// eager payload size).
    pub wire_bytes: usize,
    /// Opaque payload; the protocol layer downcasts it.
    pub payload: Box<dyn Any + Send>,
}

/// Remote key of a registered memory region.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct MrKey(u64);

struct Mr {
    buf: HostBuf,
}

/// Registration refused: granting it would exceed the node's pin limit.
/// The simulator's equivalent of `ibv_reg_mr` failing with `ENOMEM` when
/// `RLIMIT_MEMLOCK` is exhausted.
#[derive(Clone, Debug)]
pub struct RegError {
    /// Bytes the caller asked to pin.
    pub requested: usize,
    /// Bytes this node already has pinned through its HCA.
    pub pinned: usize,
    /// The node's pin limit.
    pub limit: usize,
}

impl std::fmt::Display for RegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory registration failed: {} bytes requested, {} already pinned, limit {}",
            self.requested, self.pinned, self.limit
        )
    }
}

impl std::error::Error for RegError {}

struct NodeNet {
    /// When this node's transmit engine is next free.
    tx_free: SimTime,
    /// Registered memory regions (keyed for remote access).
    mrs: HashMap<MrKey, Mr>,
    /// Bytes currently pinned through this HCA (for the fault layer's pin
    /// limit; released by [`Nic::deregister`]).
    pinned_bytes: usize,
    /// Sanitizer: last operation posted to this node's transmit engine.
    tx_last: Option<san::OpId>,
}

struct FabricInner {
    model: NetModel,
    nodes: Mutex<Vec<NodeNet>>,
    /// One mailbox per node; outside the lock so receivers don't contend.
    mailboxes: Vec<Mailbox<Packet>>,
    next_key: AtomicU64,
    /// Sanitizer queue domain; lanes are node ids (one tx engine each).
    san_domain: u64,
    /// Seeded fault injection, if this fabric was built with faults.
    faults: Option<FaultState>,
    /// Trace lanes, one per node's transmit engine (`hca{n}/tx`). `None`
    /// until [`Fabric::attach_recorder`]; emission is skipped entirely then.
    trace: Mutex<Option<Vec<Lane>>>,
}

/// The simulated cluster interconnect. Clones are shallow.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

/// A per-node HCA handle.
#[derive(Clone)]
pub struct Nic {
    fabric: Fabric,
    node: usize,
}

impl Fabric {
    /// Create a fabric connecting `nodes` nodes.
    pub fn new(nodes: usize, model: NetModel) -> Self {
        Self::with_faults(nodes, model, None)
    }

    /// Like [`Fabric::new`], but with an optional seeded fault-injection
    /// spec. `None` is exactly `Fabric::new` — no random stream exists and
    /// the fabric is perfectly reliable.
    pub fn with_faults(nodes: usize, model: NetModel, faults: Option<FaultSpec>) -> Self {
        Fabric {
            inner: Arc::new(FabricInner {
                model,
                nodes: Mutex::new(
                    (0..nodes)
                        .map(|_| NodeNet {
                            tx_free: SimTime::ZERO,
                            mrs: HashMap::new(),
                            pinned_bytes: 0,
                            tx_last: None,
                        })
                        .collect(),
                ),
                mailboxes: (0..nodes).map(|_| Mailbox::new()).collect(),
                next_key: AtomicU64::new(1),
                san_domain: san::new_queue_domain(),
                faults: faults.map(FaultState::new),
                trace: Mutex::new(None),
            }),
        }
    }

    /// Whether this fabric injects faults. Protocol layers use this to arm
    /// retry timers only when the network can actually misbehave, keeping
    /// the zero-fault configuration bit-identical to a fabric built without
    /// a fault spec.
    pub fn faults_enabled(&self) -> bool {
        self.inner.faults.is_some()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.inner.mailboxes.len()
    }

    /// The HCA of `node`.
    pub fn nic(&self, node: usize) -> Nic {
        assert!(node < self.num_nodes(), "no such node {node}");
        Nic {
            fabric: self.clone(),
            node,
        }
    }

    /// The network cost model.
    pub fn model(&self) -> &NetModel {
        &self.inner.model
    }

    /// Attach a trace recorder: each node's transmit engine becomes an
    /// `hca{n}/tx` lane carrying serialization spans and fault instants.
    /// Recording never changes timing — spans reuse the times the engine
    /// already computed.
    pub fn attach_recorder(&self, rec: &Recorder) {
        let lanes = (0..self.num_nodes())
            .map(|n| rec.lane(&format!("hca{n}"), "tx", LaneKind::Hca))
            .collect();
        *self.inner.trace.lock() = Some(lanes);
    }
}

impl Nic {
    /// This HCA's node id.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The mailbox where this node's incoming packets land.
    pub fn mailbox(&self) -> &Mailbox<Packet> {
        &self.fabric.inner.mailboxes[self.node]
    }

    /// Sanitizer: register an HCA work request on this node's tx engine,
    /// ordered after the engine's previous request (same-QP ordering).
    fn san_begin(
        &self,
        kind: &'static str,
        reads: Vec<san::MemRange>,
        writes: Vec<san::MemRange>,
    ) -> Option<san::OpId> {
        if !san::enabled() {
            return None;
        }
        let preds = {
            let nodes = self.fabric.inner.nodes.lock();
            nodes[self.node].tx_last.into_iter().collect()
        };
        san::begin_op(san::OpDesc {
            kind,
            queue: (self.fabric.inner.san_domain, self.node as u64),
            preds,
            reads,
            writes,
        })
    }

    /// The trace lane of this node's transmit engine, if a recorder is
    /// attached.
    fn tx_lane(&self) -> Option<Lane> {
        self.fabric
            .inner
            .trace
            .lock()
            .as_ref()
            .map(|lanes| lanes[self.node].clone())
    }

    /// Occupy the transmit engine for `bytes` and return (engine occupancy
    /// start, engine release time, payload arrival time). `kind` labels the
    /// serialization span on the engine's trace lane.
    fn tx_schedule(
        &self,
        kind: &'static str,
        bytes: usize,
        op: Option<san::OpId>,
    ) -> (SimTime, SimTime, SimTime) {
        let m = &self.fabric.inner.model;
        let now = sim_core::now();
        let mut nodes = self.fabric.inner.nodes.lock();
        let start = now.max(nodes[self.node].tx_free);
        let tx_done = start + m.serialize_time(bytes);
        nodes[self.node].tx_free = tx_done;
        if op.is_some() {
            nodes[self.node].tx_last = op;
        }
        drop(nodes);
        if let Some(lane) = self.tx_lane() {
            lane.span(kind, start, tx_done);
        }
        let arrival = tx_done + SimDur::from_nanos(m.wire_lat_ns);
        san::op_complete_at(op, arrival);
        (start, tx_done, arrival)
    }

    fn post_overhead(&self) {
        sim_core::sleep(SimDur::from_nanos(self.fabric.inner.model.post_overhead_ns));
    }

    /// Reliable two-sided send: delivers a [`Packet`] into `dst`'s mailbox.
    /// `wire_bytes` is the size the message occupies on the wire (use
    /// [`NetModel::ctrl_bytes`] for control messages, the payload length for
    /// eager data). Returns the sender-side completion (ack'd delivery).
    pub fn send(&self, dst: usize, wire_bytes: usize, payload: Box<dyn Any + Send>) -> Completion {
        self.send_impl(dst, wire_bytes, payload, false)
    }

    /// Convenience: send a control-sized message. Unlike [`Nic::send`],
    /// control messages are subject to the fault layer's drop/delay
    /// injection (the protocol above must retransmit them).
    pub fn send_ctrl(&self, dst: usize, payload: Box<dyn Any + Send>) -> Completion {
        let bytes = self.fabric.inner.model.ctrl_bytes;
        self.send_impl(dst, bytes, payload, true)
    }

    fn send_impl(
        &self,
        dst: usize,
        wire_bytes: usize,
        payload: Box<dyn Any + Send>,
        ctrl: bool,
    ) -> Completion {
        assert!(dst < self.fabric.num_nodes(), "no such node {dst}");
        self.post_overhead();
        let op = self.san_begin("nic_send", vec![], vec![]);
        let kind = if ctrl { "ctrl" } else { "send" };
        let (start, _, arrival) = self.tx_schedule(kind, wire_bytes, op);
        // Fault injection applies to control traffic only: the loss happens
        // past the sender's HCA (a switch dropping toward a hosed receive
        // queue), so the sender-side CQE still reports success either way.
        let mut deliver_at = Some(arrival);
        if ctrl {
            if let Some(f) = &self.fabric.inner.faults {
                if f.drop_ctrl() {
                    instrument::global().record("fault.ctrl_drop");
                    if let Some(lane) = self.tx_lane() {
                        lane.instant("fault.ctrl_drop", arrival);
                    }
                    deliver_at = None;
                } else if let Some(extra) = f.delay_ctrl() {
                    instrument::global().record("fault.ctrl_delay");
                    if let Some(lane) = self.tx_lane() {
                        lane.instant("fault.ctrl_delay", arrival);
                    }
                    deliver_at = Some(arrival + SimDur::from_nanos(extra));
                }
            }
        }
        if let Some(t) = deliver_at {
            self.fabric.inner.mailboxes[dst].send_at(
                t,
                Packet {
                    src: self.node,
                    wire_bytes,
                    payload,
                },
            );
        }
        let c = Completion::ready_between(start, arrival);
        if let Some(o) = op {
            c.attach_ops(&[o]);
        }
        c
    }

    /// Register `buf` for remote access (pins it). Costs registration time.
    ///
    /// Infallible: internal pools registered at startup must not fail even
    /// under a fault-injected pin limit (MVAPICH2 registers its vbuf pools
    /// at `MPI_Init`; the limit bites on *user* buffers, via
    /// [`try_register`](Nic::try_register)). The bytes still count against
    /// the node's pinned footprint.
    pub fn register(&self, buf: &HostBuf) -> MrKey {
        let m = &self.fabric.inner.model;
        if sim_core::in_sim() {
            sim_core::sleep(m.reg_time(buf.len()));
        }
        self.register_finish(buf)
    }

    /// Fallible registration for user buffers: refused with [`RegError`]
    /// when the fault layer's pin limit would be exceeded. The refusal is
    /// checked *before* the registration time is charged (the verbs call
    /// fails fast). Without a fault spec this never fails.
    pub fn try_register(&self, buf: &HostBuf) -> Result<MrKey, RegError> {
        if let Some(limit) = self
            .fabric
            .inner
            .faults
            .as_ref()
            .and_then(|f| f.pin_limit())
        {
            let pinned = self.fabric.inner.nodes.lock()[self.node].pinned_bytes;
            if pinned + buf.len() > limit {
                instrument::global().record("fault.reg_fail");
                if let Some(lane) = self.tx_lane() {
                    lane.instant_now("fault.reg_fail");
                }
                return Err(RegError {
                    requested: buf.len(),
                    pinned,
                    limit,
                });
            }
        }
        let m = &self.fabric.inner.model;
        if sim_core::in_sim() {
            sim_core::sleep(m.reg_time(buf.len()));
        }
        Ok(self.register_finish(buf))
    }

    fn register_finish(&self, buf: &HostBuf) -> MrKey {
        buf.pin();
        let key = MrKey(self.fabric.inner.next_key.fetch_add(1, Ordering::Relaxed));
        let mut nodes = self.fabric.inner.nodes.lock();
        nodes[self.node].pinned_bytes += buf.len();
        nodes[self.node].mrs.insert(key, Mr { buf: buf.clone() });
        key
    }

    /// Bytes this node currently has pinned through its HCA.
    pub fn pinned_bytes(&self) -> usize {
        self.fabric.inner.nodes.lock()[self.node].pinned_bytes
    }

    /// Whether this NIC's fabric injects faults (see
    /// [`Fabric::faults_enabled`]).
    pub fn faults_enabled(&self) -> bool {
        self.fabric.faults_enabled()
    }

    /// Remove a registration. The region stays pinned (as after
    /// `ibv_dereg_mr` the pages may stay resident); remote access through
    /// the key now faults. The bytes no longer count against the node's
    /// pin-limit footprint.
    pub fn deregister(&self, key: MrKey) {
        let mut nodes = self.fabric.inner.nodes.lock();
        let removed = nodes[self.node].mrs.remove(&key);
        match removed {
            Some(mr) => nodes[self.node].pinned_bytes -= mr.buf.len(),
            None => panic!("deregister of unknown MrKey {key:?}"),
        }
    }

    /// One-sided RDMA write: place `len` bytes from the local pinned region
    /// at `src` into `(dst_node, key, dst_offset)`. The remote CPU sees no
    /// event; the returned completion is the sender-side CQE.
    ///
    /// Panics (a simulated HCA protection fault) if the local source is not
    /// pinned, the remote key is unknown, or the write is out of bounds.
    pub fn rdma_write(
        &self,
        dst_node: usize,
        key: MrKey,
        dst_offset: usize,
        src: &HostPtr,
        len: usize,
    ) -> Completion {
        if !src.buf().is_pinned() {
            san::report_protocol(format!(
                "RDMA write from unpinned local memory {:?}",
                src.buf()
            ));
            panic!("RDMA write from unpinned local memory {:?}", src.buf());
        }
        self.post_overhead();
        // Injected transport failure: the write occupies the engine and the
        // wire like a real retry-exhausted transfer, but places no bytes and
        // completes with an error CQE. No sanitizer op is created — nothing
        // was written, so there is nothing to order against.
        if let Some(f) = &self.fabric.inner.faults {
            if f.rdma_error() {
                instrument::global().record("fault.rdma_error");
                let (start, _, arrival) = self.tx_schedule("rdma", len, None);
                if let Some(lane) = self.tx_lane() {
                    lane.instant("fault.rdma_error", arrival);
                }
                return Completion::failed_between(start, arrival);
            }
        }
        // Validate and copy into the remote region. The copy is performed
        // eagerly; remote visibility is ordered by the fabric because any
        // notification of this write travels behind it on the same engine.
        let op = {
            let nodes = self.fabric.inner.nodes.lock();
            let Some(mr) = nodes[dst_node].mrs.get(&key) else {
                drop(nodes);
                san::report_protocol(format!(
                    "RDMA write to unknown MrKey {key:?} on node {dst_node}                      (unregistered or deregistered target region)"
                ));
                panic!("RDMA write to unknown MrKey {key:?} on node {dst_node}");
            };
            if dst_offset + len > mr.buf.len() {
                let mr_len = mr.buf.len();
                drop(nodes);
                san::report_protocol(format!(
                    "RDMA write out of bounds: {dst_offset}+{len} > {mr_len}"
                ));
                panic!("RDMA write out of bounds: {dst_offset}+{len} > {mr_len}");
            }
            let reads = vec![san::MemRange {
                domain: san::MemDomain::Host {
                    buf: src.buf().id(),
                },
                start: src.offset(),
                len,
            }];
            let writes = vec![san::MemRange {
                domain: san::MemDomain::Host { buf: mr.buf.id() },
                start: dst_offset,
                len,
            }];
            let data = {
                let _san = san::suppress();
                src.read(len)
            };
            let mr_buf = mr.buf.clone();
            drop(nodes);
            let op = self.san_begin("rdma_write", reads, writes);
            let _san = san::suppress();
            mr_buf.write(dst_offset, &data);
            op
        };
        let (start, _, arrival) = self.tx_schedule("rdma", len, op);
        let c = Completion::ready_between(start, arrival);
        if let Some(o) = op {
            c.attach_ops(&[o]);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{now, Sim};

    fn in_sim(f: impl FnOnce() + Send + 'static) {
        let sim = Sim::new();
        sim.spawn("test", f);
        sim.run();
    }

    #[test]
    fn send_delivers_after_wire_time() {
        let sim = Sim::new();
        let fabric = Fabric::new(2, NetModel::qdr());
        {
            let nic = fabric.nic(0);
            sim.spawn("sender", move || {
                nic.send(1, 1 << 20, Box::new(42u32));
            });
        }
        {
            let nic = fabric.nic(1);
            sim.spawn("receiver", move || {
                let pkt = nic.mailbox().recv();
                assert_eq!(pkt.src, 0);
                assert_eq!(*pkt.payload.downcast::<u32>().unwrap(), 42);
                // ~300 ns post + ~328 us serialize + 1.3 us latency.
                let us = now().as_micros_f64();
                assert!((us - 329.3).abs() < 2.0, "arrival at {us} us");
            });
        }
        sim.run();
    }

    #[test]
    fn sends_from_one_node_are_in_order() {
        let sim = Sim::new();
        let fabric = Fabric::new(2, NetModel::qdr());
        {
            let nic = fabric.nic(0);
            sim.spawn("sender", move || {
                // A large message posted first must arrive before a small
                // one posted second (same QP ordering).
                nic.send(1, 1 << 20, Box::new(1u32));
                nic.send(1, 8, Box::new(2u32));
            });
        }
        {
            let nic = fabric.nic(1);
            sim.spawn("receiver", move || {
                let a = nic.mailbox().recv();
                let b = nic.mailbox().recv();
                assert_eq!(*a.payload.downcast::<u32>().unwrap(), 1);
                assert_eq!(*b.payload.downcast::<u32>().unwrap(), 2);
            });
        }
        sim.run();
    }

    #[test]
    fn rdma_write_places_bytes_remotely() {
        let sim = Sim::new();
        let fabric = Fabric::new(2, NetModel::qdr());
        let target = HostBuf::alloc(64);
        let key = fabric.nic(1).register(&target); // outside sim: no time cost
        {
            let nic = fabric.nic(0);
            let t2 = target.clone();
            sim.spawn("writer", move || {
                let src = HostBuf::from_vec(vec![7u8; 16]);
                nic.register(&src); // pin it
                let c = nic.rdma_write(1, key, 8, &src.base(), 16);
                c.wait();
                assert_eq!(t2.read(8, 16), vec![7u8; 16]);
                assert_eq!(t2.read(0, 8), vec![0u8; 8]);
            });
        }
        sim.run();
    }

    #[test]
    #[should_panic(expected = "unpinned local memory")]
    fn rdma_from_unpinned_faults() {
        let fabric = Fabric::new(2, NetModel::qdr());
        let target = HostBuf::alloc(64);
        let key = fabric.nic(1).register(&target);
        in_sim(move || {
            let src = HostBuf::alloc(16);
            fabric.nic(0).rdma_write(1, key, 0, &src.base(), 16);
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rdma_out_of_bounds_faults() {
        let fabric = Fabric::new(2, NetModel::qdr());
        let target = HostBuf::alloc(64);
        let key = fabric.nic(1).register(&target);
        in_sim(move || {
            let src = HostBuf::alloc(128);
            fabric.nic(0).register(&src);
            fabric.nic(0).rdma_write(1, key, 0, &src.base(), 128);
        });
    }

    #[test]
    #[should_panic(expected = "unknown MrKey")]
    fn rdma_after_deregister_faults() {
        let fabric = Fabric::new(2, NetModel::qdr());
        let target = HostBuf::alloc(64);
        let nic1 = fabric.nic(1);
        let key = nic1.register(&target);
        nic1.deregister(key);
        in_sim(move || {
            let src = HostBuf::alloc(16);
            fabric.nic(0).register(&src);
            fabric.nic(0).rdma_write(1, key, 0, &src.base(), 16);
        });
    }

    #[test]
    fn registration_costs_time_in_sim() {
        let sim = Sim::new();
        let fabric = Fabric::new(1, NetModel::qdr());
        sim.spawn("p", move || {
            let buf = HostBuf::alloc(1 << 20);
            let t0 = now();
            fabric.nic(0).register(&buf);
            assert!(now() > t0);
            assert!(buf.is_pinned());
        });
        sim.run();
    }

    #[test]
    fn certain_ctrl_drop_loses_packet_but_acks_sender() {
        let sim = Sim::new();
        let fabric = Fabric::with_faults(
            2,
            NetModel::qdr(),
            Some(FaultSpec {
                ctrl_drop: 1.0,
                ..FaultSpec::seeded(3)
            }),
        );
        {
            let nic = fabric.nic(0);
            sim.spawn("sender", move || {
                // Dropped ctrl message still completes on the sender side...
                let c = nic.send_ctrl(1, Box::new("rts"));
                c.wait();
                assert!(!c.is_error());
                // ...and data sends are never subject to ctrl loss.
                nic.send(1, 1 << 10, Box::new(5u32));
            });
        }
        {
            let nic = fabric.nic(1);
            sim.spawn("receiver", move || {
                let pkt = nic.mailbox().recv();
                assert_eq!(*pkt.payload.downcast::<u32>().unwrap(), 5);
            });
        }
        sim.run();
    }

    #[test]
    fn delayed_ctrl_can_be_overtaken() {
        let sim = Sim::new();
        let fabric = Fabric::with_faults(
            2,
            NetModel::qdr(),
            Some(FaultSpec {
                ctrl_delay: 1.0,
                delay_ns: 1_000_000,
                ..FaultSpec::seeded(4)
            }),
        );
        {
            let nic = fabric.nic(0);
            sim.spawn("sender", move || {
                nic.send_ctrl(1, Box::new("first")); // delayed 1 ms
                nic.send(1, 8, Box::new("second")); // data: on time
            });
        }
        {
            let nic = fabric.nic(1);
            sim.spawn("receiver", move || {
                let a = nic.mailbox().recv();
                let b = nic.mailbox().recv();
                assert_eq!(*a.payload.downcast::<&str>().unwrap(), "second");
                assert_eq!(*b.payload.downcast::<&str>().unwrap(), "first");
            });
        }
        sim.run();
    }

    #[test]
    fn injected_rdma_error_places_no_bytes() {
        let sim = Sim::new();
        let fabric = Fabric::with_faults(
            2,
            NetModel::qdr(),
            Some(FaultSpec {
                rdma_error: 1.0,
                ..FaultSpec::seeded(5)
            }),
        );
        let target = HostBuf::alloc(64);
        let key = fabric.nic(1).register(&target);
        {
            let nic = fabric.nic(0);
            let t2 = target.clone();
            sim.spawn("writer", move || {
                let src = HostBuf::from_vec(vec![7u8; 16]);
                nic.register(&src);
                let c = nic.rdma_write(1, key, 0, &src.base(), 16);
                c.wait();
                assert!(c.is_error(), "injected failure must surface as error CQE");
                assert_eq!(t2.read(0, 16), vec![0u8; 16], "no bytes placed");
            });
        }
        sim.run();
    }

    #[test]
    fn pin_limit_fails_try_register_but_not_register() {
        let sim = Sim::new();
        let fabric = Fabric::with_faults(
            1,
            NetModel::qdr(),
            Some(FaultSpec {
                pin_limit_bytes: Some(100),
                ..FaultSpec::seeded(6)
            }),
        );
        sim.spawn("p", move || {
            let nic = fabric.nic(0);
            let a = HostBuf::alloc(64);
            let ka = nic.try_register(&a).expect("under the limit");
            assert_eq!(nic.pinned_bytes(), 64);
            let b = HostBuf::alloc(64);
            let err = nic.try_register(&b).expect_err("64+64 > 100");
            assert_eq!((err.requested, err.pinned, err.limit), (64, 64, 100));
            // Infallible registration (internal pools) ignores the limit
            // but still counts.
            nic.register(&b);
            assert_eq!(nic.pinned_bytes(), 128);
            // Deregistering releases the accounting.
            nic.deregister(ka);
            assert_eq!(nic.pinned_bytes(), 64);
        });
        sim.run();
    }

    #[test]
    fn control_messages_are_cheap() {
        let sim = Sim::new();
        let fabric = Fabric::new(2, NetModel::qdr());
        {
            let nic = fabric.nic(0);
            sim.spawn("sender", move || {
                nic.send_ctrl(1, Box::new("rts"));
            });
        }
        {
            let nic = fabric.nic(1);
            sim.spawn("receiver", move || {
                let _ = nic.mailbox().recv();
                assert!(now().as_micros_f64() < 2.0, "ctrl took {}", now());
            });
        }
        sim.run();
    }
}
