//! The fabric: per-node HCAs, reliable-connected messaging, RDMA writes and
//! the intra-node shared-memory channel.
//!
//! What is modeled, and why it is enough for the paper's protocol:
//!
//! * **SEND/RECV** ([`Nic::send`]) — reliable, in-order delivery of typed
//!   messages into the destination endpoint's mailbox. Used for MPI
//!   envelopes, eager payloads and the RTS/CTS/FIN control traffic of
//!   rendezvous protocols.
//! * **RDMA WRITE** ([`Nic::rdma_write`]) — one-sided placement of bytes
//!   into a *registered* remote host region, invisible to the remote CPU
//!   (no completion is delivered there; the protocol above announces
//!   completion with its own FIN message, exactly as MVAPICH2 does).
//! * **Registration** ([`Nic::register`]) — RDMA targets and sources must
//!   be registered (which pins them); unregistered access panics, which is
//!   the simulator's equivalent of a protection fault on the HCA.
//! * **Shared memory** ([`Nic::shm_write`] and automatic routing inside
//!   [`Nic::send`]) — traffic between two endpoints on the same physical
//!   node never touches the HCA or the switch fabric. It goes through the
//!   node's shm copy engine (kernel-assisted copy through shared pages)
//!   with its own, much cheaper cost model, and is never subject to fault
//!   injection: injected losses model switch misbehavior past the HCA,
//!   which intra-node traffic does not cross.
//!
//! Endpoints vs. nodes: an **endpoint** is one process's attachment point
//! (one per MPI rank, with its own mailbox); a **node** is the physical
//! host, and several endpoints may share one via [`Topology`]. Everything
//! per-HCA — the transmit engine, the MR table, the pinned-bytes
//! accounting, the shm copy engine — is per *node*, so co-located
//! endpoints contend for it, exactly like processes sharing a host adapter.
//!
//! Timing: each node's HCA has one transmit engine. An operation occupies
//! the engine for `bytes/bw`, and the payload lands `wire_lat` after it
//! leaves the engine. Because every message from one node serializes
//! through that engine and latency is constant, delivery from any source is
//! in posting order — the in-order guarantee of an IB reliable-connected
//! QP. The shm channel serializes the same way through the node's copy
//! engine, so intra-node delivery is in posting order too.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hostmem::{HostBuf, HostPtr};
use sim_core::instrument::{self, CallCounters};
use sim_core::lock::Mutex;
use sim_core::san;
use sim_core::{Completion, Component, DeliveryStamp, Mailbox, Sim, SimDur, SimTime, Waker};
use sim_trace::{Lane, LaneKind, Recorder};

use crate::fault::{FaultSpec, FaultState};
use crate::job::{BindError, JobQos, JobSpec};
use crate::model::{NetModel, ShmModel};
use crate::scheduler::{CtrlAction, CtrlPoint, DeliveryScheduler};
use crate::topology::Topology;

/// A message delivered to an endpoint's mailbox.
pub struct Packet {
    /// Sending endpoint (rank) id.
    pub src: usize,
    /// Number of bytes this packet occupied on the wire (control header or
    /// eager payload size).
    pub wire_bytes: usize,
    /// Opaque payload; the protocol layer downcasts it.
    pub payload: Box<dyn Any + Send>,
}

/// Remote key of a registered memory region.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct MrKey(u64);

/// One strided run of a scatter/gather wire descriptor: `count` blocks of
/// `len` bytes, the first at `offset`, successive blocks `stride` bytes
/// apart. Offsets are absolute within the buffer (gather side) or memory
/// region (scatter side) the entry addresses. The HCA's offload engine
/// fetches one descriptor entry per run
/// ([`NetModel::offload_entry_ns`](crate::NetModel::offload_entry_ns)),
/// so a whole strided plane costs one fetch, not one per block.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SgEntry {
    /// Byte offset of the first block.
    pub offset: usize,
    /// Bytes per block.
    pub len: usize,
    /// Distance between consecutive block starts, bytes.
    pub stride: usize,
    /// Number of blocks in the run.
    pub count: usize,
}

impl SgEntry {
    /// Payload bytes this run moves.
    pub fn bytes(&self) -> usize {
        self.len * self.count
    }

    /// Extent of the run in its buffer: first to last byte touched.
    pub fn span(&self) -> usize {
        if self.count == 0 {
            0
        } else {
            (self.count - 1) * self.stride + self.len
        }
    }
}

struct Mr {
    buf: HostBuf,
}

/// Registration refused: granting it would exceed the node's pin limit.
/// The simulator's equivalent of `ibv_reg_mr` failing with `ENOMEM` when
/// `RLIMIT_MEMLOCK` is exhausted.
#[derive(Clone, Debug)]
pub struct RegError {
    /// Bytes the caller asked to pin.
    pub requested: usize,
    /// Bytes this node already has pinned through its HCA.
    pub pinned: usize,
    /// The node's pin limit.
    pub limit: usize,
}

impl std::fmt::Display for RegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory registration failed: {} bytes requested, {} already pinned, limit {}",
            self.requested, self.pinned, self.limit
        )
    }
}

impl std::error::Error for RegError {}

/// Per-node hardware state: one HCA transmit engine, one MR table / pin
/// account (the node's protection domain) and one shm copy engine, shared
/// by every endpoint the topology places on the node.
struct NodeHw {
    /// When this node's HCA transmit engine is next free.
    tx_free: SimTime,
    /// Per-job horizon on this node's transmit engine: when job `j`'s last
    /// operation leaves the engine. Drives the weighted-share arbitration
    /// of a multi-job fabric (see [`Fabric::multi_job`]); a single-job
    /// fabric never reads it.
    job_tx_free: Vec<SimTime>,
    /// Registered memory regions (keyed for remote access).
    mrs: HashMap<MrKey, Mr>,
    /// Bytes currently pinned through this node's HCA (for the fault
    /// layer's pin limit; released by [`Nic::deregister`]).
    pinned_bytes: usize,
    /// Sanitizer: last operation posted to this node's transmit engine.
    tx_last: Option<san::OpId>,
    /// When this node's shm copy engine is next free.
    shm_free: SimTime,
    /// Sanitizer: last operation posted to this node's shm copy engine.
    shm_last: Option<san::OpId>,
}

impl NodeHw {
    fn new(njobs: usize) -> Self {
        NodeHw {
            tx_free: SimTime::ZERO,
            job_tx_free: vec![SimTime::ZERO; njobs],
            mrs: HashMap::new(),
            pinned_bytes: 0,
            tx_last: None,
            shm_free: SimTime::ZERO,
            shm_last: None,
        }
    }
}

/// One tenant of the fabric: its endpoint range, rank→slot topology, QoS
/// knobs, trace label and (late-bound) slot→physical-node placement.
struct JobState {
    /// First global endpoint id of this job (its ranks are
    /// `base..base + topo.num_ranks()`).
    base: usize,
    /// Ranks → job-local node slots.
    topo: Topology,
    /// The job's share of the hardware it is bound to.
    qos: JobQos,
    /// Scope prefix for lanes/pools/metrics (`""` for the implicit
    /// single job).
    label: String,
    /// Job-local node slot → physical node, assigned by
    /// [`Fabric::try_bind_job`]. `None` until the job is placed.
    binding: Mutex<Option<Arc<Vec<usize>>>>,
    /// Per-job fabric byte accounting (`hca.tx_bytes`, `shm.bytes`),
    /// surfaced as `{label}fabric.*` metrics for labeled jobs.
    counters: CallCounters,
}

/// Trace lanes of one node: HCA transmit engine, shm copy engine and the
/// HCA's scatter/gather offload engine.
struct NodeLanes {
    hca: Lane,
    shm: Lane,
    offload: Lane,
}

/// One timed delivery queued behind the event-driven pump: the packet, its
/// destination, the sender-side happens-before stamp, and an enqueue
/// sequence breaking ties among same-instant deliveries (posting order).
struct PendingDelivery {
    at: SimTime,
    seq: u64,
    dst: usize,
    pkt: Packet,
    stamp: DeliveryStamp,
}

impl PartialEq for PendingDelivery {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for PendingDelivery {}
impl PartialOrd for PendingDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

type PendingQueue = Arc<Mutex<BinaryHeap<Reverse<PendingDelivery>>>>;

/// The fabric's delivery engine as a stackless component: every timed
/// packet delivery becomes one entry in a shared pending heap plus one
/// exact (non-coalesced) wake. The wake discipline is
/// [`Waker::wake_exact_at`], which admits timers seq-for-seq exactly like
/// the per-packet boxed closures it replaces, and each tick delivers
/// exactly **one** due packet — the one whose enqueue order matches the
/// firing timer's admission order. Draining everything due per tick would
/// be faster but not identity-preserving: another timer action (a retry,
/// a fault-injected release) whose admission seq falls *between* two
/// same-instant deliveries must still run between them, exactly as it did
/// when each delivery was its own closure. With that discipline,
/// virtual-time results are bit-identical with the pump on or off.
struct DeliveryPump {
    pending: PendingQueue,
    mailboxes: Vec<Mailbox<Packet>>,
}

impl Component for DeliveryPump {
    fn tick(&mut self, now: SimTime) -> Option<SimTime> {
        // Pop under the lock, deliver outside it: send_stamped may wake
        // a parked receiver, which must not re-enter the pending heap.
        let due = {
            let mut q = self.pending.lock();
            match q.peek() {
                Some(Reverse(e)) if e.at <= now => q.pop(),
                _ => None,
            }
        };
        if let Some(Reverse(e)) = due {
            self.mailboxes[e.dst].send_stamped(e.pkt, e.stamp);
        }
        None
    }
}

/// Pump registration state held by the fabric once attached to a kernel.
struct PumpState {
    waker: Waker,
    pending: PendingQueue,
    seq: AtomicU64,
}

struct FabricInner {
    model: NetModel,
    shm: ShmModel,
    /// The fabric's tenants, in declaration order. A classic single-job
    /// fabric is one entry with an empty label and an identity binding.
    jobs: Vec<JobState>,
    /// Physical nodes in the machine (every per-node table below has this
    /// length).
    num_phys: usize,
    /// Per-node hardware (indexed by physical node id).
    nodes: Mutex<Vec<NodeHw>>,
    /// One mailbox per endpoint; outside the lock so receivers don't
    /// contend.
    mailboxes: Vec<Mailbox<Packet>>,
    next_key: AtomicU64,
    /// Sanitizer queue domain; lanes `0..num_nodes` are the HCA tx engines,
    /// lanes `num_nodes..2*num_nodes` the shm copy engines.
    san_domain: u64,
    /// Seeded fault injection, if this fabric was built with faults.
    faults: Option<FaultState>,
    /// Per-node byte accumulators (`hca.tx_bytes`, `shm.bytes`), indexed by
    /// node id. Live regardless of tracing; surfaced as `node{k}.*` metrics
    /// when a recorder is attached.
    counters: Vec<CallCounters>,
    /// Trace lanes, one pair per node (`node{k}/hca_tx`, `node{k}/shm`).
    /// `None` until [`Fabric::attach_recorder`]; emission is skipped
    /// entirely then.
    trace: Mutex<Option<Vec<NodeLanes>>>,
    /// Control-packet delivery hook (see [`crate::scheduler`]). `None`
    /// (the default) is FIFO delivery with the original code path — a run
    /// without a scheduler is bit-identical to a pre-hook fabric.
    scheduler: Mutex<Option<Arc<dyn DeliveryScheduler>>>,
    /// Event-driven delivery pump (see [`Fabric::attach_event_pump`]).
    /// `None` falls back to one boxed timer closure per packet.
    pump: Mutex<Option<PumpState>>,
}

/// The simulated cluster interconnect. Clones are shallow.
#[derive(Clone)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

/// One endpoint's handle onto its node's HCA (and shm channel). All rank
/// and node ids a `Nic` exposes are *job-local*: a tenant of a multi-job
/// fabric sees a dense `0..n` rank space and `0..k` node-slot space
/// exactly like a job on a dedicated fabric, and the handle translates to
/// global mailboxes and physical nodes internally.
#[derive(Clone)]
pub struct Nic {
    fabric: Fabric,
    /// Owning job id (0 on a single-job fabric).
    job: usize,
    /// Job-local rank.
    endpoint: usize,
}

impl Fabric {
    /// Create a fabric with `n` endpoints, one per node (the pre-topology
    /// default where rank and node coincide).
    pub fn new(n: usize, model: NetModel) -> Self {
        Self::with_faults(n, model, None)
    }

    /// Like [`Fabric::new`], but with an optional seeded fault-injection
    /// spec. `None` is exactly `Fabric::new` — no random stream exists and
    /// the fabric is perfectly reliable.
    pub fn with_faults(n: usize, model: NetModel, faults: Option<FaultSpec>) -> Self {
        Self::with_topology(
            Topology::one_per_node(n),
            model,
            ShmModel::westmere(),
            faults,
        )
    }

    /// Create a fabric for an explicit [`Topology`]: one mailbox per
    /// endpoint, one HCA + shm copy engine per node. This is the classic
    /// single-job fabric: one implicit tenant with default QoS, an empty
    /// scope label and the identity slot→node binding.
    pub fn with_topology(
        topo: Topology,
        model: NetModel,
        shm: ShmModel,
        faults: Option<FaultSpec>,
    ) -> Self {
        let num_phys = topo.num_nodes();
        let job = JobState {
            base: 0,
            qos: JobQos::default(),
            label: String::new(),
            binding: Mutex::new(Some(Arc::new((0..num_phys).collect()))),
            counters: CallCounters::new(),
            topo,
        };
        Self::build(num_phys, vec![job], model, shm, faults)
    }

    /// Create a fabric shared by several concurrent jobs on `phys_nodes`
    /// physical nodes. Every tenant is declared up front (endpoint ids and
    /// QoS state are fixed for the fabric's lifetime); each job's
    /// placement onto physical nodes is chosen later with
    /// [`Fabric::try_bind_job`] and released with [`Fabric::unbind_job`],
    /// so a scheduler can stream an arbitrary job sequence through a
    /// bounded machine.
    ///
    /// **Arbitration model.** Each node's HCA transmit engine keeps one
    /// horizon per job. An operation posted while the engine is idle
    /// serializes at full link rate (work-conserving). While the engine is
    /// backlogged, a job's operation serializes at the weighted share
    /// `w_j / Σ w_k` over the jobs currently backlogged on that engine
    /// (`JobQos::hca_weight`); an optional `JobQos::rate_cap` ceiling
    /// applies in both states. A sole tenant therefore always runs at full
    /// rate through the identical arithmetic path as a single-job fabric —
    /// bit-identical virtual times, whatever its weight.
    ///
    /// The shm copy engine stays a plain per-node FIFO: intra-node copies
    /// contend by ordering, not by weighted shares (kernel-assisted copies
    /// have no QoS hardware to model).
    pub fn multi_job(
        phys_nodes: usize,
        specs: Vec<JobSpec>,
        model: NetModel,
        shm: ShmModel,
        faults: Option<FaultSpec>,
    ) -> Self {
        assert!(
            !specs.is_empty(),
            "a multi-job fabric needs at least one job"
        );
        let mut base = 0usize;
        let jobs: Vec<JobState> = specs
            .into_iter()
            .map(|s| {
                s.qos.validate();
                assert!(
                    s.topo.num_nodes() <= phys_nodes,
                    "job '{}' wants {} node slots but the fabric has {phys_nodes} nodes",
                    s.label,
                    s.topo.num_nodes()
                );
                let js = JobState {
                    base,
                    topo: s.topo,
                    qos: s.qos,
                    label: s.label,
                    binding: Mutex::new(None),
                    counters: CallCounters::new(),
                };
                base += js.topo.num_ranks();
                js
            })
            .collect();
        Self::build(phys_nodes, jobs, model, shm, faults)
    }

    fn build(
        num_phys: usize,
        jobs: Vec<JobState>,
        model: NetModel,
        shm: ShmModel,
        faults: Option<FaultSpec>,
    ) -> Self {
        let njobs = jobs.len();
        let num_eps: usize = jobs.iter().map(|j| j.topo.num_ranks()).sum();
        Fabric {
            inner: Arc::new(FabricInner {
                model,
                shm,
                num_phys,
                nodes: Mutex::new((0..num_phys).map(|_| NodeHw::new(njobs)).collect()),
                mailboxes: (0..num_eps).map(|_| Mailbox::new()).collect(),
                next_key: AtomicU64::new(1),
                san_domain: san::new_queue_domain(),
                faults: faults.map(FaultState::new),
                counters: (0..num_phys).map(|_| CallCounters::new()).collect(),
                trace: Mutex::new(None),
                scheduler: Mutex::new(None),
                pump: Mutex::new(None),
                jobs,
            }),
        }
    }

    /// Register this fabric's delivery engine as a stackless component on
    /// `sim`'s kernel: timed packet deliveries become pending-heap entries
    /// drained by one `tick()` instead of one boxed timer closure each.
    /// Wakes use the exact (non-coalescing) discipline, so virtual-time
    /// results are bit-identical with or without the pump. Call before the
    /// job starts sending. Returns the pump's [`Waker`] (for stats).
    pub fn attach_event_pump(&self, sim: &Sim) -> Waker {
        let pending: PendingQueue = Arc::new(Mutex::new(BinaryHeap::new()));
        let waker = sim.add_component(
            "fabric.delivery",
            DeliveryPump {
                pending: Arc::clone(&pending),
                mailboxes: self.inner.mailboxes.clone(),
            },
        );
        *self.inner.pump.lock() = Some(PumpState {
            waker: waker.clone(),
            pending,
            seq: AtomicU64::new(0),
        });
        waker
    }

    /// Deliver `pkt` into `dst`'s mailbox at instant `at`: through the
    /// event pump when attached, as a per-packet timer closure otherwise.
    /// Both paths capture the sender's happens-before stamp here, at send
    /// time.
    fn deliver_packet_at(&self, dst: usize, at: SimTime, pkt: Packet) {
        let pump = self.inner.pump.lock();
        if let Some(p) = &*pump {
            let seq = p.seq.fetch_add(1, Ordering::Relaxed);
            p.pending.lock().push(Reverse(PendingDelivery {
                at,
                seq,
                dst,
                pkt,
                stamp: Mailbox::<Packet>::stamp(),
            }));
            p.waker.wake_exact_at(at);
        } else {
            drop(pump);
            self.inner.mailboxes[dst].send_at(at, pkt);
        }
    }

    /// Install a control-packet delivery scheduler (see
    /// [`crate::scheduler`]). Must be called before the job starts sending;
    /// packets already in flight keep their FIFO arrival. Pass-through
    /// contract: with no scheduler installed — or a scheduler that always
    /// answers [`CtrlAction::Deliver`] — delivery is bit-identical to a
    /// fabric without the hook.
    pub fn set_delivery_scheduler(&self, s: Arc<dyn DeliveryScheduler>) {
        *self.inner.scheduler.lock() = Some(s);
    }

    /// Whether this fabric injects faults. Protocol layers use this to arm
    /// retry timers only when the network can actually misbehave, keeping
    /// the zero-fault configuration bit-identical to a fabric built without
    /// a fault spec.
    pub fn faults_enabled(&self) -> bool {
        self.inner.faults.is_some()
    }

    /// Number of physical nodes.
    pub fn num_nodes(&self) -> usize {
        self.inner.num_phys
    }

    /// Number of endpoints (MPI ranks attached to the fabric, summed over
    /// all jobs).
    pub fn num_endpoints(&self) -> usize {
        self.inner.mailboxes.len()
    }

    /// The first job's ranks→nodes mapping (the only one on a single-job
    /// fabric; multi-job callers use [`Fabric::job_topology`]).
    pub fn topology(&self) -> &Topology {
        &self.inner.jobs[0].topo
    }

    /// The attachment point of *global* endpoint `endpoint`. On a
    /// single-job fabric global and job-local ids coincide; multi-job
    /// callers usually want [`Fabric::job_nic`].
    pub fn nic(&self, endpoint: usize) -> Nic {
        assert!(
            endpoint < self.num_endpoints(),
            "no such endpoint {endpoint} (fabric has {} endpoints)",
            self.num_endpoints()
        );
        let job = self.inner.jobs.partition_point(|j| j.base <= endpoint) - 1;
        Nic {
            fabric: self.clone(),
            job,
            endpoint: endpoint - self.inner.jobs[job].base,
        }
    }

    /// The attachment point of job `job`'s local rank `rank`.
    pub fn job_nic(&self, job: usize, rank: usize) -> Nic {
        let js = &self.inner.jobs[job];
        assert!(
            rank < js.topo.num_ranks(),
            "no such rank {rank} in job {job} (job has {} ranks)",
            js.topo.num_ranks()
        );
        Nic {
            fabric: self.clone(),
            job,
            endpoint: rank,
        }
    }

    /// Number of jobs sharing this fabric (1 for a classic fabric).
    pub fn num_jobs(&self) -> usize {
        self.inner.jobs.len()
    }

    /// Job `job`'s scope label (`""` for the implicit single job).
    pub fn job_label(&self, job: usize) -> &str {
        &self.inner.jobs[job].label
    }

    /// Job `job`'s QoS knobs.
    pub fn job_qos(&self, job: usize) -> &JobQos {
        &self.inner.jobs[job].qos
    }

    /// Job `job`'s rank→node-slot topology.
    pub fn job_topology(&self, job: usize) -> &Topology {
        &self.inner.jobs[job].topo
    }

    /// Bytes job `job` has serialized through HCA transmit engines so far.
    pub fn job_hca_tx_bytes(&self, job: usize) -> u64 {
        self.inner.jobs[job].counters.get("hca.tx_bytes")
    }

    /// Bytes job `job` has copied through shm channels so far.
    pub fn job_shm_bytes(&self, job: usize) -> u64 {
        self.inner.jobs[job].counters.get("shm.bytes")
    }

    /// Job `job`'s current slot→physical-node binding, if placed.
    pub fn job_binding(&self, job: usize) -> Option<Vec<usize>> {
        self.inner.jobs[job]
            .binding
            .lock()
            .as_ref()
            .map(|b| b.as_ref().clone())
    }

    /// Place job `job` onto the physical nodes `nodes` (one per job node
    /// slot, in slot order). Refuses — with a typed [`BindError`] — a
    /// second binding, an out-of-range or duplicated node, or a placement
    /// that overlaps another bound job's nodes unless *both* jobs opted
    /// into sharing (`JobQos::share_nodes`); the overlap refusal is what
    /// keeps per-node HCA accounting from silently double-billing two
    /// tenants that never agreed to share an adapter.
    pub fn try_bind_job(&self, job: usize, nodes: &[usize]) -> Result<(), BindError> {
        let jobs = &self.inner.jobs;
        let js = &jobs[job];
        if nodes.len() != js.topo.num_nodes() {
            return Err(BindError::WrongCount {
                job,
                expected: js.topo.num_nodes(),
                got: nodes.len(),
            });
        }
        for (i, &n) in nodes.iter().enumerate() {
            if n >= self.num_nodes() {
                return Err(BindError::BadNode {
                    node: n,
                    num_nodes: self.num_nodes(),
                });
            }
            if nodes[..i].contains(&n) {
                return Err(BindError::DuplicateNode { node: n });
            }
        }
        if js.binding.lock().is_some() {
            return Err(BindError::AlreadyBound { job });
        }
        for (k, other) in jobs.iter().enumerate() {
            if k == job {
                continue;
            }
            let ob = other.binding.lock();
            if let Some(b) = ob.as_ref() {
                if let Some(&shared) = b.iter().find(|n| nodes.contains(n)) {
                    if !(js.qos.share_nodes && other.qos.share_nodes) {
                        return Err(BindError::NodeOverlap {
                            job,
                            other: k,
                            node: shared,
                        });
                    }
                }
            }
        }
        *js.binding.lock() = Some(Arc::new(nodes.to_vec()));
        Ok(())
    }

    /// [`Fabric::try_bind_job`], panicking on refusal (single-scheduler
    /// callers that treat a bad placement as a bug).
    pub fn bind_job(&self, job: usize, nodes: &[usize]) {
        if let Err(e) = self.try_bind_job(job, nodes) {
            panic!("bind_job: {e}");
        }
    }

    /// Release job `job`'s node binding (the job has drained; its nodes
    /// are free for the next arrival). The job's endpoints must be idle.
    pub fn unbind_job(&self, job: usize) {
        *self.inner.jobs[job].binding.lock() = None;
    }

    /// The network cost model.
    pub fn model(&self) -> &NetModel {
        &self.inner.model
    }

    /// The intra-node shared-memory cost model.
    pub fn shm_model(&self) -> &ShmModel {
        &self.inner.shm
    }

    /// Bytes `node`'s HCA transmit engine has serialized onto the wire so
    /// far. Intra-node traffic never contributes.
    pub fn hca_tx_bytes(&self, node: usize) -> u64 {
        self.inner.counters[node].get("hca.tx_bytes")
    }

    /// Bytes copied through `node`'s shm channel so far.
    pub fn shm_bytes(&self, node: usize) -> u64 {
        self.inner.counters[node].get("shm.bytes")
    }

    /// Attach a trace recorder: each node gets a `node{k}/hca_tx` lane
    /// (HCA serialization spans and fault instants), a `node{k}/shm`
    /// lane (shm copy-engine spans) and a `node{k}/offload` lane
    /// (scatter/gather engine spans), and its byte accumulators are
    /// registered as `node{k}.*` metrics. Recording never changes timing —
    /// spans reuse the times the engines already computed.
    pub fn attach_recorder(&self, rec: &Recorder) {
        let lanes = (0..self.num_nodes())
            .map(|n| {
                let scope = format!("node{n}");
                rec.register_counters(&scope, &self.inner.counters[n]);
                NodeLanes {
                    hca: rec.lane(&scope, "hca_tx", LaneKind::Hca),
                    shm: rec.lane(&scope, "shm", LaneKind::Shm),
                    offload: rec.lane(&scope, "offload", LaneKind::Hca),
                }
            })
            .collect();
        // Labeled tenants additionally surface their own byte totals as
        // `{label}fabric.*` — the implicit single job (empty label) adds
        // nothing, keeping the classic metrics namespace unchanged.
        for j in &self.inner.jobs {
            if !j.label.is_empty() {
                rec.register_counters(&format!("{}fabric", j.label), &j.counters);
            }
        }
        *self.inner.trace.lock() = Some(lanes);
    }
}

impl Nic {
    /// This endpoint's (rank's) id within its job.
    pub fn endpoint(&self) -> usize {
        self.endpoint
    }

    /// The id of the job this endpoint belongs to (0 on a single-job
    /// fabric).
    pub fn job(&self) -> usize {
        self.job
    }

    /// The scope prefix every trace lane, sanitizer pool and metrics key
    /// of this endpoint's rank should carry (`""` on a single-job fabric,
    /// so the classic namespace is reproduced byte for byte).
    pub fn scope_prefix(&self) -> &str {
        &self.fabric.inner.jobs[self.job].label
    }

    fn job_state(&self) -> &JobState {
        &self.fabric.inner.jobs[self.job]
    }

    /// This job's slot→physical-node binding; panics if the scheduler has
    /// not placed the job yet (an unbound job must not touch the fabric).
    fn bound(&self) -> Arc<Vec<usize>> {
        self.job_state().binding.lock().clone().unwrap_or_else(|| {
            panic!(
                "job {} is not bound to physical nodes (bind_job before any traffic)",
                self.job
            )
        })
    }

    /// The physical node hosting this endpoint (internal: engines, MR
    /// tables and pin accounting live per physical node).
    fn phys_node(&self) -> usize {
        self.bound()[self.job_state().topo.node_of(self.endpoint)]
    }

    /// The physical node hosting job-local endpoint `other`.
    fn phys_node_of(&self, other: usize) -> usize {
        self.bound()[self.job_state().topo.node_of(other)]
    }

    /// The global mailbox index of job-local endpoint `other`.
    fn global_ep(&self, other: usize) -> usize {
        self.job_state().base + other
    }

    /// The node slot (within this endpoint's job) hosting this endpoint.
    /// On a single-job fabric the binding is the identity, so this is the
    /// physical node. Resource-placement layers that need the physical
    /// node on a shared fabric use [`Nic::physical_node`].
    pub fn node(&self) -> usize {
        self.job_state().topo.node_of(self.endpoint)
    }

    /// The physical node this endpoint is currently bound to (for picking
    /// shared per-node resources such as the node's GPU). Panics while the
    /// job is unbound.
    pub fn physical_node(&self) -> usize {
        self.phys_node()
    }

    /// Whether `other` is an endpoint of the same job on the same node
    /// (true for `other == self.endpoint()`).
    pub fn colocated(&self, other: usize) -> bool {
        self.job_state().topo.colocated(self.endpoint, other)
    }

    /// The node slot hosting job-local endpoint `other` (topology-aware
    /// layers — hierarchical collectives — group peers by this).
    pub fn node_of(&self, other: usize) -> usize {
        self.job_state().topo.node_of(other)
    }

    /// Number of node slots in this endpoint's job.
    pub fn num_nodes(&self) -> usize {
        self.job_state().topo.num_nodes()
    }

    /// The mailbox where this endpoint's incoming packets land.
    pub fn mailbox(&self) -> &Mailbox<Packet> {
        &self.fabric.inner.mailboxes[self.global_ep(self.endpoint)]
    }

    /// Sanitizer: register a work request on one of this node's engines
    /// (`shm: false` = HCA tx, `true` = shm copy engine), ordered after the
    /// engine's previous request (same-queue ordering).
    fn san_begin(
        &self,
        kind: &'static str,
        shm: bool,
        reads: Vec<san::MemRange>,
        writes: Vec<san::MemRange>,
    ) -> Option<san::OpId> {
        if !san::enabled() {
            return None;
        }
        let node = self.phys_node();
        let preds = {
            let nodes = self.fabric.inner.nodes.lock();
            let last = if shm {
                nodes[node].shm_last
            } else {
                nodes[node].tx_last
            };
            last.into_iter().collect()
        };
        let lane = if shm {
            (self.fabric.num_nodes() + node) as u64
        } else {
            node as u64
        };
        san::begin_op(san::OpDesc {
            kind,
            queue: (self.fabric.inner.san_domain, lane),
            preds,
            reads,
            writes,
        })
    }

    /// The trace lane of this node's HCA transmit engine, if a recorder is
    /// attached.
    fn tx_lane(&self) -> Option<Lane> {
        self.fabric
            .inner
            .trace
            .lock()
            .as_ref()
            .map(|lanes| lanes[self.phys_node()].hca.clone())
    }

    /// The trace lane of this node's shm copy engine, if a recorder is
    /// attached.
    fn shm_lane(&self) -> Option<Lane> {
        self.fabric
            .inner
            .trace
            .lock()
            .as_ref()
            .map(|lanes| lanes[self.phys_node()].shm.clone())
    }

    /// The trace lane of this node's scatter/gather offload engine, if a
    /// recorder is attached.
    fn offload_lane(&self) -> Option<Lane> {
        self.fabric
            .inner
            .trace
            .lock()
            .as_ref()
            .map(|lanes| lanes[self.phys_node()].offload.clone())
    }

    /// Occupy the node's HCA transmit engine for `bytes` and return (engine
    /// occupancy start, engine release time, payload arrival time). `kind`
    /// labels the serialization span on the engine's trace lane. `extra`
    /// extends the engine occupancy beyond pure serialization (descriptor
    /// fetches of an offload post); it scales with the QoS share like the
    /// serialization itself and is `SimDur::ZERO` for plain sends.
    fn tx_schedule(
        &self,
        kind: &'static str,
        bytes: usize,
        extra: SimDur,
        op: Option<san::OpId>,
    ) -> (SimTime, SimTime, SimTime) {
        let m = &self.fabric.inner.model;
        let jobs = &self.fabric.inner.jobs;
        let node = self.phys_node();
        let now = sim_core::now();
        let mut nodes = self.fabric.inner.nodes.lock();
        let (start, tx_done) = if jobs.len() == 1 && jobs[0].qos.rate_cap.is_none() {
            // Single uncapped tenant: the original engine timeline,
            // arithmetic-for-arithmetic.
            let start = now.max(nodes[node].tx_free);
            let tx_done = start + m.serialize_time(bytes) + extra;
            nodes[node].tx_free = tx_done;
            (start, tx_done)
        } else {
            // Weighted-share arbitration (see `Fabric::multi_job`): an
            // idle engine serves at full rate; a backlogged one splits
            // bandwidth by `hca_weight` among the jobs with work queued on
            // it. `share == 1.0` keeps the exact integer duration, so a
            // sole active tenant's times match the single-job path bit for
            // bit regardless of its weight.
            let q = &jobs[self.job].qos;
            let hw = &mut nodes[node];
            let start = now.max(hw.job_tx_free[self.job]);
            let mut share = if hw.tx_free <= now {
                1.0
            } else {
                let mut wsum = q.hca_weight as u64;
                for (j, t) in hw.job_tx_free.iter().enumerate() {
                    if j != self.job && *t > now {
                        wsum += jobs[j].qos.hca_weight as u64;
                    }
                }
                q.hca_weight as f64 / wsum as f64
            };
            if let Some(cap) = q.rate_cap {
                share = share.min(cap);
            }
            let ser = m.serialize_time(bytes) + extra;
            let dur = if share >= 1.0 {
                ser
            } else {
                SimDur::from_nanos((ser.as_nanos() as f64 / share).round() as u64)
            };
            let tx_done = start + dur;
            hw.job_tx_free[self.job] = tx_done;
            hw.tx_free = hw.tx_free.max(tx_done);
            (start, tx_done)
        };
        if op.is_some() {
            nodes[node].tx_last = op;
        }
        drop(nodes);
        self.fabric.inner.counters[node].add("hca.tx_bytes", bytes as u64);
        let js = self.job_state();
        if !js.label.is_empty() {
            js.counters.add("hca.tx_bytes", bytes as u64);
        }
        if let Some(lane) = self.tx_lane() {
            lane.span(kind, start, tx_done);
        }
        let arrival = tx_done + SimDur::from_nanos(m.wire_lat_ns);
        san::op_complete_at(op, arrival);
        (start, tx_done, arrival)
    }

    /// Occupy the node's shm copy engine for `bytes` and return (start,
    /// copy done, receiver visibility time).
    fn shm_schedule(
        &self,
        kind: &'static str,
        bytes: usize,
        op: Option<san::OpId>,
    ) -> (SimTime, SimTime, SimTime) {
        let m = &self.fabric.inner.shm;
        let node = self.phys_node();
        let now = sim_core::now();
        let mut nodes = self.fabric.inner.nodes.lock();
        let start = now.max(nodes[node].shm_free);
        let copy_done = start + m.copy_time(bytes);
        nodes[node].shm_free = copy_done;
        if op.is_some() {
            nodes[node].shm_last = op;
        }
        drop(nodes);
        self.fabric.inner.counters[node].add("shm.bytes", bytes as u64);
        let js = self.job_state();
        if !js.label.is_empty() {
            js.counters.add("shm.bytes", bytes as u64);
        }
        if let Some(lane) = self.shm_lane() {
            lane.span(kind, start, copy_done);
        }
        let visible = copy_done + SimDur::from_nanos(m.latency_ns);
        san::op_complete_at(op, visible);
        (start, copy_done, visible)
    }

    fn post_overhead(&self) {
        sim_core::sleep(SimDur::from_nanos(self.fabric.inner.model.post_overhead_ns));
    }

    fn shm_post_overhead(&self) {
        sim_core::sleep(SimDur::from_nanos(self.fabric.inner.shm.post_overhead_ns));
    }

    /// Reliable two-sided send: delivers a [`Packet`] into `dst`'s mailbox.
    /// `wire_bytes` is the size the message occupies on the wire (use
    /// [`NetModel::ctrl_bytes`] for control messages, the payload length for
    /// eager data). Returns the sender-side completion (ack'd delivery).
    ///
    /// When `dst` is another endpoint on the same node the message is
    /// routed over the shm channel instead of the HCA (self-sends still use
    /// the HCA loopback path, preserving single-process timing).
    pub fn send(&self, dst: usize, wire_bytes: usize, payload: Box<dyn Any + Send>) -> Completion {
        self.send_impl(dst, wire_bytes, payload, false)
    }

    /// Convenience: send a control-sized message. Unlike [`Nic::send`],
    /// control messages are subject to the fault layer's drop/delay
    /// injection (the protocol above must retransmit them) — except
    /// intra-node, where the shm channel is reliable by construction.
    pub fn send_ctrl(&self, dst: usize, payload: Box<dyn Any + Send>) -> Completion {
        let bytes = self.fabric.inner.model.ctrl_bytes;
        self.send_impl(dst, bytes, payload, true)
    }

    fn send_impl(
        &self,
        dst: usize,
        wire_bytes: usize,
        payload: Box<dyn Any + Send>,
        ctrl: bool,
    ) -> Completion {
        assert!(
            dst < self.job_state().topo.num_ranks(),
            "no such endpoint {dst} (job has {} endpoints)",
            self.job_state().topo.num_ranks()
        );
        if dst != self.endpoint && self.colocated(dst) {
            return self.shm_send(dst, wire_bytes, payload, ctrl);
        }
        self.post_overhead();
        let op = self.san_begin("nic_send", false, vec![], vec![]);
        let kind = if ctrl { "ctrl" } else { "send" };
        let (start, _, arrival) = self.tx_schedule(kind, wire_bytes, SimDur::ZERO, op);
        // Fault injection applies to control traffic only: the loss happens
        // past the sender's HCA (a switch dropping toward a hosed receive
        // queue), so the sender-side CQE still reports success either way.
        let mut deliver_at = Some(arrival);
        if ctrl {
            if let Some(f) = &self.fabric.inner.faults {
                if f.drop_ctrl() {
                    instrument::global().record("fault.ctrl_drop");
                    if let Some(lane) = self.tx_lane() {
                        lane.instant("fault.ctrl_drop", arrival);
                    }
                    deliver_at = None;
                } else if let Some(extra) = f.delay_ctrl() {
                    instrument::global().record("fault.ctrl_delay");
                    if let Some(lane) = self.tx_lane() {
                        lane.instant("fault.ctrl_delay", arrival);
                    }
                    deliver_at = Some(arrival + SimDur::from_nanos(extra));
                }
            }
            if let Some(t) = deliver_at {
                deliver_at = self.consult_scheduler(dst, false, t, payload.as_ref());
            }
        }
        if let Some(t) = deliver_at {
            self.fabric.deliver_packet_at(
                self.global_ep(dst),
                t,
                Packet {
                    src: self.endpoint,
                    wire_bytes,
                    payload,
                },
            );
        }
        let c = Completion::ready_between(start, arrival);
        if let Some(o) = op {
            c.attach_ops(&[o]);
        }
        c
    }

    /// Offer one outgoing control packet to the installed
    /// [`DeliveryScheduler`], if any. Returns the (possibly adjusted)
    /// delivery time, or `None` when the scheduler dropped the packet.
    /// Without a scheduler this is a single uncontended lock and returns
    /// `arrival` unchanged.
    fn consult_scheduler(
        &self,
        dst: usize,
        shm: bool,
        arrival: SimTime,
        payload: &(dyn Any + Send),
    ) -> Option<SimTime> {
        let sched = match self.fabric.inner.scheduler.lock().clone() {
            Some(s) => s,
            None => return Some(arrival),
        };
        let point = CtrlPoint {
            src: self.endpoint,
            dst,
            shm,
            arrival,
            payload,
        };
        match sched.on_ctrl(&point) {
            CtrlAction::Deliver => Some(arrival),
            CtrlAction::Delay(ns) => {
                instrument::global().record("sched.ctrl_delay");
                Some(arrival + SimDur::from_nanos(ns))
            }
            CtrlAction::Drop if shm => panic!(
                "DeliveryScheduler dropped an intra-node ctrl packet \
                 ({} -> {dst}): the shm channel is reliable by construction",
                self.endpoint
            ),
            CtrlAction::Drop => {
                instrument::global().record("sched.ctrl_drop");
                None
            }
        }
    }

    /// Intra-node delivery over the node's shm channel: no HCA, no wire,
    /// no fault injection.
    fn shm_send(
        &self,
        dst: usize,
        wire_bytes: usize,
        payload: Box<dyn Any + Send>,
        ctrl: bool,
    ) -> Completion {
        self.shm_post_overhead();
        let op = self.san_begin("shm_send", true, vec![], vec![]);
        let kind = if ctrl { "ctrl" } else { "send" };
        let (start, _, visible) = self.shm_schedule(kind, wire_bytes, op);
        let deliver_at = if ctrl {
            // The shm channel never loses messages, so `Drop` is rejected
            // inside `consult_scheduler`; `Delay` stands in for the
            // receiving rank being scheduled out. The sender-side
            // completion keeps the model-computed `visible` either way.
            self.consult_scheduler(dst, true, visible, payload.as_ref())
                .expect("unreachable: shm ctrl packets cannot be dropped")
        } else {
            visible
        };
        self.fabric.deliver_packet_at(
            self.global_ep(dst),
            deliver_at,
            Packet {
                src: self.endpoint,
                wire_bytes,
                payload,
            },
        );
        let c = Completion::ready_between(start, visible);
        if let Some(o) = op {
            c.attach_ops(&[o]);
        }
        c
    }

    /// Register `buf` for remote access (pins it). Costs registration time.
    ///
    /// Infallible: internal pools registered at startup must not fail even
    /// under a fault-injected pin limit (MVAPICH2 registers its vbuf pools
    /// at `MPI_Init`; the limit bites on *user* buffers, via
    /// [`try_register`](Nic::try_register)). The bytes still count against
    /// the node's pinned footprint.
    pub fn register(&self, buf: &HostBuf) -> MrKey {
        let m = &self.fabric.inner.model;
        if sim_core::in_sim() {
            sim_core::sleep(m.reg_time(buf.len()));
        }
        self.register_finish(buf)
    }

    /// Fallible registration for user buffers: refused with [`RegError`]
    /// when the fault layer's pin limit would be exceeded. The refusal is
    /// checked *before* the registration time is charged (the verbs call
    /// fails fast). Without a fault spec this never fails. The limit is per
    /// node: co-located endpoints draw from the same pin budget.
    pub fn try_register(&self, buf: &HostBuf) -> Result<MrKey, RegError> {
        if let Some(limit) = self
            .fabric
            .inner
            .faults
            .as_ref()
            .and_then(|f| f.pin_limit())
        {
            let pinned = self.fabric.inner.nodes.lock()[self.phys_node()].pinned_bytes;
            if pinned + buf.len() > limit {
                instrument::global().record("fault.reg_fail");
                if let Some(lane) = self.tx_lane() {
                    lane.instant_now("fault.reg_fail");
                }
                return Err(RegError {
                    requested: buf.len(),
                    pinned,
                    limit,
                });
            }
        }
        let m = &self.fabric.inner.model;
        if sim_core::in_sim() {
            sim_core::sleep(m.reg_time(buf.len()));
        }
        Ok(self.register_finish(buf))
    }

    fn register_finish(&self, buf: &HostBuf) -> MrKey {
        buf.pin();
        let node = self.phys_node();
        let key = MrKey(self.fabric.inner.next_key.fetch_add(1, Ordering::Relaxed));
        let mut nodes = self.fabric.inner.nodes.lock();
        nodes[node].pinned_bytes += buf.len();
        nodes[node].mrs.insert(key, Mr { buf: buf.clone() });
        key
    }

    /// Bytes this endpoint's node currently has pinned through its HCA
    /// (shared across co-located endpoints).
    pub fn pinned_bytes(&self) -> usize {
        self.fabric.inner.nodes.lock()[self.phys_node()].pinned_bytes
    }

    /// Whether this NIC's fabric injects faults (see
    /// [`Fabric::faults_enabled`]).
    pub fn faults_enabled(&self) -> bool {
        self.fabric.faults_enabled()
    }

    /// Remove a registration. The region stays pinned (as after
    /// `ibv_dereg_mr` the pages may stay resident); remote access through
    /// the key now faults. The bytes no longer count against the node's
    /// pin-limit footprint.
    pub fn deregister(&self, key: MrKey) {
        let node = self.phys_node();
        let mut nodes = self.fabric.inner.nodes.lock();
        let removed = nodes[node].mrs.remove(&key);
        match removed {
            Some(mr) => nodes[node].pinned_bytes -= mr.buf.len(),
            None => panic!("deregister of unknown MrKey {key:?}"),
        }
    }

    /// Look up the MR `key` on `dst`'s node, validate `[offset, offset+len)`
    /// against it, and return its buffer. Panics like an HCA protection
    /// fault on unknown keys or out-of-bounds access (`what` labels the
    /// faulting operation).
    fn resolve_mr(
        &self,
        what: &str,
        dst: usize,
        key: MrKey,
        dst_offset: usize,
        len: usize,
    ) -> HostBuf {
        let dst_node = self.phys_node_of(dst);
        let nodes = self.fabric.inner.nodes.lock();
        let Some(mr) = nodes[dst_node].mrs.get(&key) else {
            drop(nodes);
            san::report_protocol(format!(
                "{what} to unknown MrKey {key:?} on node {dst_node}                      (unregistered or deregistered target region)"
            ));
            panic!("{what} to unknown MrKey {key:?} on node {dst_node}");
        };
        if dst_offset + len > mr.buf.len() {
            let mr_len = mr.buf.len();
            drop(nodes);
            san::report_protocol(format!(
                "{what} out of bounds: {dst_offset}+{len} > {mr_len}"
            ));
            panic!("{what} out of bounds: {dst_offset}+{len} > {mr_len}");
        }
        mr.buf.clone()
    }

    /// One-sided RDMA write: place `len` bytes from the local pinned region
    /// at `src` into `(dst, key, dst_offset)` on the destination endpoint's
    /// node. The remote CPU sees no event; the returned completion is the
    /// sender-side CQE.
    ///
    /// Panics (a simulated HCA protection fault) if the local source is not
    /// pinned, the remote key is unknown, or the write is out of bounds.
    pub fn rdma_write(
        &self,
        dst: usize,
        key: MrKey,
        dst_offset: usize,
        src: &HostPtr,
        len: usize,
    ) -> Completion {
        if !src.buf().is_pinned() {
            san::report_protocol(format!(
                "RDMA write from unpinned local memory {:?}",
                src.buf()
            ));
            panic!("RDMA write from unpinned local memory {:?}", src.buf());
        }
        self.post_overhead();
        // Injected transport failure: the write occupies the engine and the
        // wire like a real retry-exhausted transfer, but places no bytes and
        // completes with an error CQE. No sanitizer op is created — nothing
        // was written, so there is nothing to order against.
        if let Some(f) = &self.fabric.inner.faults {
            if f.rdma_error() {
                instrument::global().record("fault.rdma_error");
                let (start, _, arrival) = self.tx_schedule("rdma", len, SimDur::ZERO, None);
                if let Some(lane) = self.tx_lane() {
                    lane.instant("fault.rdma_error", arrival);
                }
                return Completion::failed_between(start, arrival);
            }
        }
        // Validate and copy into the remote region. The copy is performed
        // eagerly; remote visibility is ordered by the fabric because any
        // notification of this write travels behind it on the same engine.
        let mr_buf = self.resolve_mr("RDMA write", dst, key, dst_offset, len);
        let op = {
            let reads = vec![san::MemRange {
                domain: san::MemDomain::Host {
                    buf: src.buf().id(),
                },
                start: src.offset(),
                len,
            }];
            let writes = vec![san::MemRange {
                domain: san::MemDomain::Host { buf: mr_buf.id() },
                start: dst_offset,
                len,
            }];
            let data = {
                let _san = san::suppress();
                src.read(len)
            };
            let op = self.san_begin("rdma_write", false, reads, writes);
            let _san = san::suppress();
            mr_buf.write(dst_offset, &data);
            op
        };
        let (start, _, arrival) = self.tx_schedule("rdma", len, SimDur::ZERO, op);
        let c = Completion::ready_between(start, arrival);
        if let Some(o) = op {
            c.attach_ops(&[o]);
        }
        c
    }

    /// One-sided scatter/gather write: the HCA's offload engine walks the
    /// `gather` descriptor over `src`'s buffer, streams the packed bytes to
    /// `dst`, and the remote HCA walks `scatter` to place them into the
    /// region named by `key` — no CPU pack/unpack on either side. Entry
    /// offsets are absolute within `src`'s buffer (gather) and within the
    /// remote MR (scatter).
    ///
    /// Cost model: one descriptor fetch per entry
    /// ([`NetModel::offload_entry_ns`](crate::NetModel::offload_entry_ns))
    /// plus DMA serialization of the payload, both charged against the
    /// node's HCA transmit engine (and scaled by the job's QoS share like
    /// any other transmit). With [`FaultSpec::desc_fetch_error`]
    /// (crate::FaultSpec::desc_fetch_error) armed, a post can fail its
    /// descriptor fetch: it occupies the engine, places no bytes and
    /// completes with an error CQE — callers retry like a failed
    /// [`Nic::rdma_write`].
    ///
    /// Panics (a simulated HCA protection fault) if the local source is not
    /// pinned, the remote key is unknown, either descriptor runs out of
    /// bounds, or the gather and scatter descriptors disagree on the total
    /// byte count.
    pub fn rdma_write_sg(
        &self,
        dst: usize,
        key: MrKey,
        src: &HostPtr,
        gather: &[SgEntry],
        scatter: &[SgEntry],
    ) -> Completion {
        if !src.buf().is_pinned() {
            san::report_protocol(format!(
                "SG write from unpinned local memory {:?}",
                src.buf()
            ));
            panic!("SG write from unpinned local memory {:?}", src.buf());
        }
        let total: usize = gather.iter().map(|e| e.bytes()).sum();
        let scatter_total: usize = scatter.iter().map(|e| e.bytes()).sum();
        assert_eq!(
            total, scatter_total,
            "SG write descriptors disagree: gather {total} bytes, scatter {scatter_total}"
        );
        let entries = gather.len() + scatter.len();
        let m = &self.fabric.inner.model;
        let extra = SimDur::from_nanos(entries as u64 * m.offload_entry_ns);
        self.post_overhead();
        // Injected descriptor-fetch failure: the post occupies the engine
        // (the HCA burned the fetches before aborting) but places no bytes
        // and completes with an error CQE, exactly like a failed RDMA write.
        if let Some(f) = &self.fabric.inner.faults {
            if f.desc_fetch_error() {
                instrument::global().record("fault.desc_fetch");
                let (start, tx_done, arrival) = self.tx_schedule("offload", total, extra, None);
                if let Some(lane) = self.offload_lane() {
                    lane.span("sg_fault", start, tx_done);
                    lane.instant("fault.desc_fetch", arrival);
                }
                return Completion::failed_between(start, arrival);
            }
        }
        let src_len = src.buf().len();
        for e in gather {
            assert!(
                e.offset + e.span() <= src_len,
                "SG gather entry {e:?} out of bounds of local buffer (len {src_len})"
            );
        }
        let extent = scatter
            .iter()
            .map(|e| e.offset + e.span())
            .max()
            .unwrap_or(0);
        let mr_buf = self.resolve_mr("SG write", dst, key, 0, extent);
        // Validate and copy eagerly, like `rdma_write`: remote visibility is
        // ordered by the fabric because any notification of this write
        // travels behind it on the same engine. Sanitizer ranges cover each
        // run's full extent (holes included) — one range per descriptor
        // entry, mirroring what the HCA's DMA engine may touch.
        let op = {
            let reads = gather
                .iter()
                .map(|e| san::MemRange {
                    domain: san::MemDomain::Host {
                        buf: src.buf().id(),
                    },
                    start: e.offset,
                    len: e.span(),
                })
                .collect();
            let writes = scatter
                .iter()
                .map(|e| san::MemRange {
                    domain: san::MemDomain::Host { buf: mr_buf.id() },
                    start: e.offset,
                    len: e.span(),
                })
                .collect();
            let data = {
                let _san = san::suppress();
                let mut data = Vec::with_capacity(total);
                for e in gather {
                    for b in 0..e.count {
                        data.extend_from_slice(&src.buf().read(e.offset + b * e.stride, e.len));
                    }
                }
                data
            };
            let op = self.san_begin("rdma_write_sg", false, reads, writes);
            let _san = san::suppress();
            let mut off = 0;
            for e in scatter {
                for b in 0..e.count {
                    mr_buf.write(e.offset + b * e.stride, &data[off..off + e.len]);
                    off += e.len;
                }
            }
            op
        };
        let (start, tx_done, arrival) = self.tx_schedule("offload", total, extra, op);
        let node = self.phys_node();
        self.fabric.inner.counters[node].add("offload.bytes", total as u64);
        self.fabric.inner.counters[node].add("offload.entries", entries as u64);
        let js = self.job_state();
        if !js.label.is_empty() {
            js.counters.add("offload.bytes", total as u64);
        }
        if let Some(lane) = self.offload_lane() {
            lane.span("sg", start, tx_done);
        }
        let c = Completion::ready_between(start, arrival);
        if let Some(o) = op {
            c.attach_ops(&[o]);
        }
        c
    }

    /// Intra-node one-sided write: place `len` bytes from `src` into
    /// `(dst, key, dst_offset)` through the node's shm copy engine. The
    /// shared-memory analogue of [`Nic::rdma_write`]: same MR naming and
    /// protection-fault semantics, but no HCA, no wire, no pinning
    /// requirement on the source (the CPU copies through shared pages), and
    /// no fault injection.
    ///
    /// Panics if `dst` is not co-located with this endpoint, if the key is
    /// unknown, or if the write is out of bounds.
    pub fn shm_write(
        &self,
        dst: usize,
        key: MrKey,
        dst_offset: usize,
        src: &HostPtr,
        len: usize,
    ) -> Completion {
        assert!(
            self.colocated(dst),
            "shm write from endpoint {} to endpoint {dst} on another node",
            self.endpoint
        );
        self.shm_post_overhead();
        let mr_buf = self.resolve_mr("shm write", dst, key, dst_offset, len);
        let op = {
            let reads = vec![san::MemRange {
                domain: san::MemDomain::Host {
                    buf: src.buf().id(),
                },
                start: src.offset(),
                len,
            }];
            let writes = vec![san::MemRange {
                domain: san::MemDomain::Host { buf: mr_buf.id() },
                start: dst_offset,
                len,
            }];
            let data = {
                let _san = san::suppress();
                src.read(len)
            };
            let op = self.san_begin("shm_write", true, reads, writes);
            let _san = san::suppress();
            mr_buf.write(dst_offset, &data);
            op
        };
        let (start, _, visible) = self.shm_schedule("copy", len, op);
        let c = Completion::ready_between(start, visible);
        if let Some(o) = op {
            c.attach_ops(&[o]);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::{now, Sim};

    fn in_sim(f: impl FnOnce() + Send + 'static) {
        let sim = Sim::new();
        sim.spawn("test", f);
        sim.run();
    }

    #[test]
    fn send_delivers_after_wire_time() {
        let sim = Sim::new();
        let fabric = Fabric::new(2, NetModel::qdr());
        {
            let nic = fabric.nic(0);
            sim.spawn("sender", move || {
                nic.send(1, 1 << 20, Box::new(42u32));
            });
        }
        {
            let nic = fabric.nic(1);
            sim.spawn("receiver", move || {
                let pkt = nic.mailbox().recv();
                assert_eq!(pkt.src, 0);
                assert_eq!(*pkt.payload.downcast::<u32>().unwrap(), 42);
                // ~300 ns post + ~328 us serialize + 1.3 us latency.
                let us = now().as_micros_f64();
                assert!((us - 329.3).abs() < 2.0, "arrival at {us} us");
            });
        }
        sim.run();
    }

    #[test]
    fn sends_from_one_node_are_in_order() {
        let sim = Sim::new();
        let fabric = Fabric::new(2, NetModel::qdr());
        {
            let nic = fabric.nic(0);
            sim.spawn("sender", move || {
                // A large message posted first must arrive before a small
                // one posted second (same QP ordering).
                nic.send(1, 1 << 20, Box::new(1u32));
                nic.send(1, 8, Box::new(2u32));
            });
        }
        {
            let nic = fabric.nic(1);
            sim.spawn("receiver", move || {
                let a = nic.mailbox().recv();
                let b = nic.mailbox().recv();
                assert_eq!(*a.payload.downcast::<u32>().unwrap(), 1);
                assert_eq!(*b.payload.downcast::<u32>().unwrap(), 2);
            });
        }
        sim.run();
    }

    #[test]
    fn rdma_write_places_bytes_remotely() {
        let sim = Sim::new();
        let fabric = Fabric::new(2, NetModel::qdr());
        let target = HostBuf::alloc(64);
        let key = fabric.nic(1).register(&target); // outside sim: no time cost
        {
            let nic = fabric.nic(0);
            let t2 = target.clone();
            sim.spawn("writer", move || {
                let src = HostBuf::from_vec(vec![7u8; 16]);
                nic.register(&src); // pin it
                let c = nic.rdma_write(1, key, 8, &src.base(), 16);
                c.wait();
                assert_eq!(t2.read(8, 16), vec![7u8; 16]);
                assert_eq!(t2.read(0, 8), vec![0u8; 8]);
            });
        }
        sim.run();
    }

    #[test]
    #[should_panic(expected = "unpinned local memory")]
    fn rdma_from_unpinned_faults() {
        let fabric = Fabric::new(2, NetModel::qdr());
        let target = HostBuf::alloc(64);
        let key = fabric.nic(1).register(&target);
        in_sim(move || {
            let src = HostBuf::alloc(16);
            fabric.nic(0).rdma_write(1, key, 0, &src.base(), 16);
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rdma_out_of_bounds_faults() {
        let fabric = Fabric::new(2, NetModel::qdr());
        let target = HostBuf::alloc(64);
        let key = fabric.nic(1).register(&target);
        in_sim(move || {
            let src = HostBuf::alloc(128);
            fabric.nic(0).register(&src);
            fabric.nic(0).rdma_write(1, key, 0, &src.base(), 128);
        });
    }

    #[test]
    #[should_panic(expected = "unknown MrKey")]
    fn rdma_after_deregister_faults() {
        let fabric = Fabric::new(2, NetModel::qdr());
        let target = HostBuf::alloc(64);
        let nic1 = fabric.nic(1);
        let key = nic1.register(&target);
        nic1.deregister(key);
        in_sim(move || {
            let src = HostBuf::alloc(16);
            fabric.nic(0).register(&src);
            fabric.nic(0).rdma_write(1, key, 0, &src.base(), 16);
        });
    }

    #[test]
    fn registration_costs_time_in_sim() {
        let sim = Sim::new();
        let fabric = Fabric::new(1, NetModel::qdr());
        sim.spawn("p", move || {
            let buf = HostBuf::alloc(1 << 20);
            let t0 = now();
            fabric.nic(0).register(&buf);
            assert!(now() > t0);
            assert!(buf.is_pinned());
        });
        sim.run();
    }

    #[test]
    fn certain_ctrl_drop_loses_packet_but_acks_sender() {
        let sim = Sim::new();
        let fabric = Fabric::with_faults(
            2,
            NetModel::qdr(),
            Some(FaultSpec {
                ctrl_drop: 1.0,
                ..FaultSpec::seeded(3)
            }),
        );
        {
            let nic = fabric.nic(0);
            sim.spawn("sender", move || {
                // Dropped ctrl message still completes on the sender side...
                let c = nic.send_ctrl(1, Box::new("rts"));
                c.wait();
                assert!(!c.is_error());
                // ...and data sends are never subject to ctrl loss.
                nic.send(1, 1 << 10, Box::new(5u32));
            });
        }
        {
            let nic = fabric.nic(1);
            sim.spawn("receiver", move || {
                let pkt = nic.mailbox().recv();
                assert_eq!(*pkt.payload.downcast::<u32>().unwrap(), 5);
            });
        }
        sim.run();
    }

    #[test]
    fn delayed_ctrl_can_be_overtaken() {
        let sim = Sim::new();
        let fabric = Fabric::with_faults(
            2,
            NetModel::qdr(),
            Some(FaultSpec {
                ctrl_delay: 1.0,
                delay_ns: 1_000_000,
                ..FaultSpec::seeded(4)
            }),
        );
        {
            let nic = fabric.nic(0);
            sim.spawn("sender", move || {
                nic.send_ctrl(1, Box::new("first")); // delayed 1 ms
                nic.send(1, 8, Box::new("second")); // data: on time
            });
        }
        {
            let nic = fabric.nic(1);
            sim.spawn("receiver", move || {
                let a = nic.mailbox().recv();
                let b = nic.mailbox().recv();
                assert_eq!(*a.payload.downcast::<&str>().unwrap(), "second");
                assert_eq!(*b.payload.downcast::<&str>().unwrap(), "first");
            });
        }
        sim.run();
    }

    #[test]
    fn injected_rdma_error_places_no_bytes() {
        let sim = Sim::new();
        let fabric = Fabric::with_faults(
            2,
            NetModel::qdr(),
            Some(FaultSpec {
                rdma_error: 1.0,
                ..FaultSpec::seeded(5)
            }),
        );
        let target = HostBuf::alloc(64);
        let key = fabric.nic(1).register(&target);
        {
            let nic = fabric.nic(0);
            let t2 = target.clone();
            sim.spawn("writer", move || {
                let src = HostBuf::from_vec(vec![7u8; 16]);
                nic.register(&src);
                let c = nic.rdma_write(1, key, 0, &src.base(), 16);
                c.wait();
                assert!(c.is_error(), "injected failure must surface as error CQE");
                assert_eq!(t2.read(0, 16), vec![0u8; 16], "no bytes placed");
            });
        }
        sim.run();
    }

    #[test]
    fn pin_limit_fails_try_register_but_not_register() {
        let sim = Sim::new();
        let fabric = Fabric::with_faults(
            1,
            NetModel::qdr(),
            Some(FaultSpec {
                pin_limit_bytes: Some(100),
                ..FaultSpec::seeded(6)
            }),
        );
        sim.spawn("p", move || {
            let nic = fabric.nic(0);
            let a = HostBuf::alloc(64);
            let ka = nic.try_register(&a).expect("under the limit");
            assert_eq!(nic.pinned_bytes(), 64);
            let b = HostBuf::alloc(64);
            let err = nic.try_register(&b).expect_err("64+64 > 100");
            assert_eq!((err.requested, err.pinned, err.limit), (64, 64, 100));
            // Infallible registration (internal pools) ignores the limit
            // but still counts.
            nic.register(&b);
            assert_eq!(nic.pinned_bytes(), 128);
            // Deregistering releases the accounting.
            nic.deregister(ka);
            assert_eq!(nic.pinned_bytes(), 64);
        });
        sim.run();
    }

    #[test]
    fn control_messages_are_cheap() {
        let sim = Sim::new();
        let fabric = Fabric::new(2, NetModel::qdr());
        {
            let nic = fabric.nic(0);
            sim.spawn("sender", move || {
                nic.send_ctrl(1, Box::new("rts"));
            });
        }
        {
            let nic = fabric.nic(1);
            sim.spawn("receiver", move || {
                let _ = nic.mailbox().recv();
                assert!(now().as_micros_f64() < 2.0, "ctrl took {}", now());
            });
        }
        sim.run();
    }

    #[test]
    #[should_panic(expected = "no such endpoint 7")]
    fn nic_lookup_out_of_range_panics() {
        Fabric::new(2, NetModel::qdr()).nic(7);
    }

    #[test]
    fn colocated_send_bypasses_hca() {
        let sim = Sim::new();
        let topo = Topology::uniform(1, 2); // two ranks, one node
        let fabric = Fabric::with_topology(topo, NetModel::qdr(), ShmModel::westmere(), None);
        {
            let nic = fabric.nic(0);
            sim.spawn("sender", move || {
                nic.send(1, 1 << 20, Box::new(9u32));
            });
        }
        {
            let nic = fabric.nic(1);
            let f2 = fabric.clone();
            sim.spawn("receiver", move || {
                let pkt = nic.mailbox().recv();
                assert_eq!(pkt.src, 0);
                assert_eq!(*pkt.payload.downcast::<u32>().unwrap(), 9);
                // 1 MiB at 4 GB/s (~262 us) + sub-us overheads: well under
                // the ~329 us the wire path takes, and the HCA saw nothing.
                let us = now().as_micros_f64();
                assert!(us < 300.0, "shm delivery at {us} us");
                assert_eq!(f2.hca_tx_bytes(0), 0, "intra-node send hit the HCA");
                assert!(f2.shm_bytes(0) >= 1 << 20);
            });
        }
        sim.run();
    }

    #[test]
    fn colocated_ctrl_survives_certain_drop_faults() {
        let sim = Sim::new();
        let topo = Topology::uniform(1, 2);
        let fabric = Fabric::with_topology(
            topo,
            NetModel::qdr(),
            ShmModel::westmere(),
            Some(FaultSpec {
                ctrl_drop: 1.0,
                ..FaultSpec::seeded(7)
            }),
        );
        {
            let nic = fabric.nic(0);
            sim.spawn("sender", move || {
                nic.send_ctrl(1, Box::new("rts"));
            });
        }
        {
            let nic = fabric.nic(1);
            sim.spawn("receiver", move || {
                let pkt = nic.mailbox().recv();
                assert_eq!(*pkt.payload.downcast::<&str>().unwrap(), "rts");
            });
        }
        sim.run();
    }

    #[test]
    fn shm_write_places_bytes_without_hca() {
        let sim = Sim::new();
        let topo = Topology::uniform(1, 2);
        let fabric = Fabric::with_topology(topo, NetModel::qdr(), ShmModel::westmere(), None);
        let target = HostBuf::alloc(64);
        let key = fabric.nic(1).register(&target);
        {
            let nic = fabric.nic(0);
            let t2 = target.clone();
            let f2 = fabric.clone();
            sim.spawn("writer", move || {
                // No pinning required on the source: the CPU does the copy.
                let src = HostBuf::from_vec(vec![3u8; 16]);
                let c = nic.shm_write(1, key, 4, &src.base(), 16);
                c.wait();
                assert_eq!(t2.read(4, 16), vec![3u8; 16]);
                assert_eq!(f2.hca_tx_bytes(0), 0);
            });
        }
        sim.run();
    }

    #[test]
    #[should_panic(expected = "on another node")]
    fn shm_write_across_nodes_faults() {
        let fabric = Fabric::new(2, NetModel::qdr());
        let target = HostBuf::alloc(64);
        let key = fabric.nic(1).register(&target);
        in_sim(move || {
            let src = HostBuf::alloc(16);
            fabric.nic(0).shm_write(1, key, 0, &src.base(), 16);
        });
    }

    #[test]
    #[should_panic(expected = "unknown MrKey")]
    fn shm_write_unknown_key_faults() {
        let topo = Topology::uniform(1, 2);
        let fabric = Fabric::with_topology(topo, NetModel::qdr(), ShmModel::westmere(), None);
        let target = HostBuf::alloc(64);
        let nic1 = fabric.nic(1);
        let key = nic1.register(&target);
        nic1.deregister(key);
        in_sim(move || {
            let src = HostBuf::alloc(16);
            fabric.nic(0).shm_write(1, key, 0, &src.base(), 16);
        });
    }

    #[test]
    fn colocated_endpoints_share_one_hca_engine() {
        // Two colocated senders each push 1 MiB to a rank on another node:
        // the second transfer serializes behind the first on the shared
        // engine, so it arrives roughly twice as late as it would alone.
        let sim = Sim::new();
        let topo = Topology::from_map(vec![0, 0, 1]);
        let fabric = Fabric::with_topology(topo, NetModel::qdr(), ShmModel::westmere(), None);
        for ep in 0..2 {
            let nic = fabric.nic(ep);
            sim.spawn("sender", move || {
                nic.send(2, 1 << 20, Box::new(ep));
            });
        }
        {
            let nic = fabric.nic(2);
            sim.spawn("receiver", move || {
                let _ = nic.mailbox().recv();
                let _ = nic.mailbox().recv();
                let us = now().as_micros_f64();
                assert!(
                    us > 600.0,
                    "second 1 MiB arrived at {us} us — no contention"
                );
            });
        }
        sim.run();
    }

    #[test]
    fn self_send_still_uses_hca_loopback() {
        let sim = Sim::new();
        let fabric = Fabric::new(1, NetModel::qdr());
        {
            let nic = fabric.nic(0);
            let f2 = fabric.clone();
            sim.spawn("p", move || {
                nic.send(0, 4096, Box::new(1u8));
                let _ = nic.mailbox().recv();
                assert_eq!(f2.hca_tx_bytes(0), 4096);
            });
        }
        sim.run();
    }

    // ---- multi-job fabric -------------------------------------------------

    fn two_node_spec(id: usize) -> JobSpec {
        JobSpec::labeled(id, Topology::one_per_node(2))
    }

    #[test]
    fn bind_rejects_bad_placements_with_typed_errors() {
        let f = Fabric::multi_job(
            4,
            vec![two_node_spec(0), two_node_spec(1)],
            NetModel::qdr(),
            ShmModel::westmere(),
            None,
        );
        assert_eq!(
            f.try_bind_job(0, &[0]),
            Err(BindError::WrongCount {
                job: 0,
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            f.try_bind_job(0, &[0, 9]),
            Err(BindError::BadNode {
                node: 9,
                num_nodes: 4
            })
        );
        assert_eq!(
            f.try_bind_job(0, &[1, 1]),
            Err(BindError::DuplicateNode { node: 1 })
        );
        f.bind_job(0, &[0, 1]);
        assert_eq!(
            f.try_bind_job(0, &[2, 3]),
            Err(BindError::AlreadyBound { job: 0 })
        );
        // Overlapping a bound job without QoS sharing on both is refused...
        assert_eq!(
            f.try_bind_job(1, &[1, 2]),
            Err(BindError::NodeOverlap {
                job: 1,
                other: 0,
                node: 1
            })
        );
        // ...a disjoint placement goes through, and unbinding frees the
        // nodes for a different placement.
        assert_eq!(f.try_bind_job(1, &[2, 3]), Ok(()));
        assert_eq!(f.job_binding(1), Some(vec![2, 3]));
        f.unbind_job(1);
        assert_eq!(f.try_bind_job(1, &[3, 2]), Ok(()));
    }

    #[test]
    fn overlap_allowed_when_both_jobs_opt_into_sharing() {
        let mk = |id: usize| {
            let mut s = two_node_spec(id);
            s.qos.share_nodes = true;
            s
        };
        let f = Fabric::multi_job(
            2,
            vec![mk(0), mk(1)],
            NetModel::qdr(),
            ShmModel::westmere(),
            None,
        );
        f.bind_job(0, &[0, 1]);
        assert_eq!(f.try_bind_job(1, &[0, 1]), Ok(()));
    }

    #[test]
    #[should_panic(expected = "not bound to physical nodes")]
    fn unbound_job_traffic_panics() {
        let f = Fabric::multi_job(
            2,
            vec![two_node_spec(0)],
            NetModel::qdr(),
            ShmModel::westmere(),
            None,
        );
        in_sim(move || {
            f.job_nic(0, 0).send(1, 8, Box::new(0u8));
        });
    }

    /// Arrival times of a three-message train from `tx` to `rx` (endpoint 1
    /// of the same job), as raw virtual instants.
    fn train_times(tx: Nic, rx: Nic) -> Vec<SimTime> {
        let sim = Sim::new();
        let out = Arc::new(Mutex::new(Vec::new()));
        sim.spawn("tx", move || {
            for bytes in [1usize << 20, 4096, 1 << 16] {
                tx.send(1, bytes, Box::new(bytes));
            }
        });
        let sink = Arc::clone(&out);
        sim.spawn("rx", move || {
            for _ in 0..3 {
                rx.mailbox().recv();
                sink.lock().push(now());
            }
        });
        sim.run();
        let v = out.lock().clone();
        v
    }

    #[test]
    fn sole_tenant_on_shared_fabric_is_bit_identical_to_dedicated() {
        let ded = Fabric::new(2, NetModel::qdr());
        let dedicated = train_times(ded.nic(0), ded.nic(1));
        // Same train on a 2-tenant fabric whose second job stays silent
        // (and unbound): the arbitration path must reproduce the dedicated
        // timeline exactly, whatever the active job's weight.
        let mut spec = two_node_spec(0);
        spec.qos.hca_weight = 7;
        let shared = Fabric::multi_job(
            2,
            vec![spec, two_node_spec(1)],
            NetModel::qdr(),
            ShmModel::westmere(),
            None,
        );
        shared.bind_job(0, &[0, 1]);
        let tenant = train_times(shared.job_nic(0, 0), shared.job_nic(0, 1));
        assert_eq!(dedicated, tenant, "sole tenant diverged from dedicated");
    }

    #[test]
    fn weighted_share_shifts_contention_between_tenants() {
        // Two co-located jobs blast the same HCA with eight 1 MiB messages
        // each; the weight-4 job must drain well before the weight-1 job.
        let mk = |id: usize, w: u32| {
            let mut s = two_node_spec(id);
            s.qos.share_nodes = true;
            s.qos.hca_weight = w;
            s
        };
        let f = Fabric::multi_job(
            2,
            vec![mk(0, 4), mk(1, 1)],
            NetModel::qdr(),
            ShmModel::westmere(),
            None,
        );
        f.bind_job(0, &[0, 1]);
        f.bind_job(1, &[0, 1]);
        let sim = Sim::new();
        let done = Arc::new(Mutex::new([None::<SimTime>; 2]));
        for job in 0..2 {
            let tx = f.job_nic(job, 0);
            sim.spawn("tx", move || {
                for i in 0..8 {
                    tx.send(1, 1 << 20, Box::new(i));
                }
            });
            let rx = f.job_nic(job, 1);
            let d = Arc::clone(&done);
            sim.spawn("rx", move || {
                for _ in 0..8 {
                    rx.mailbox().recv();
                }
                d.lock()[job] = Some(now());
            });
        }
        sim.run();
        let [heavy, light] = *done.lock();
        let (heavy, light) = (heavy.unwrap(), light.unwrap());
        assert!(
            heavy < light,
            "weight-4 job finished at {heavy}, weight-1 at {light}"
        );
        // Both jobs moved their full 8 MiB, billed to their own scopes and
        // to the shared node counter.
        assert_eq!(f.job_hca_tx_bytes(0), 8 << 20);
        assert_eq!(f.job_hca_tx_bytes(1), 8 << 20);
        assert_eq!(f.hca_tx_bytes(0), 16 << 20);
    }

    #[test]
    fn rate_cap_throttles_even_an_idle_engine() {
        let arrival = |cap: Option<f64>| {
            let mut spec = two_node_spec(0);
            spec.qos.rate_cap = cap;
            let f = Fabric::multi_job(2, vec![spec], NetModel::qdr(), ShmModel::westmere(), None);
            f.bind_job(0, &[0, 1]);
            train_times(f.job_nic(0, 0), f.job_nic(0, 1))[0]
        };
        let full = arrival(None).as_micros_f64();
        let capped = arrival(Some(0.25)).as_micros_f64();
        // A quarter-rate cap stretches serialization ~4x even though the
        // engine is otherwise idle (non-work-conserving ceiling).
        assert!(
            capped > 3.0 * full,
            "cap 0.25 arrived at {capped} us vs {full} us uncapped"
        );
    }
}
