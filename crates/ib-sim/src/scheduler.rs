//! Pluggable control-packet delivery scheduling.
//!
//! By default the fabric delivers control packets FIFO at the arrival time
//! its transmit-engine model computes (plus any seeded fault drop/delay).
//! A [`DeliveryScheduler`] installed via
//! [`Fabric::set_delivery_scheduler`](crate::Fabric::set_delivery_scheduler)
//! gets the last word on every *control* packet: it can let the packet
//! through unchanged, postpone it past later traffic, or (wire paths only)
//! discard it. That is exactly the authority a model checker needs to
//! enumerate delivery interleavings, and exactly the authority the fault
//! layer already exercises randomly — here it becomes deterministic and
//! externally owned.
//!
//! Contract (see DESIGN.md "Model checking & invariants"):
//!
//! * The hook sees control packets only. Eager payload and RDMA data
//!   deliveries are never rescheduled: the protocol has no retransmission
//!   for them, so reordering or dropping them would not model any fault the
//!   real network can produce (IB is reliable-connected transport).
//! * [`CtrlAction::Deliver`] must reproduce the unhooked fabric bit for
//!   bit. The fabric guarantees this by running the original delivery code
//!   path when the hook answers `Deliver`.
//! * [`CtrlAction::Drop`] is rejected (panic) for intra-node packets: the
//!   shm channel is reliable by construction and the protocol layers above
//!   are entitled to assume it (D2D device rendezvous never retransmits).
//!   `Delay` is allowed on shm packets — it models an unlucky scheduling of
//!   the receiving rank, which the protocol must tolerate.
//! * The hook runs inside the sending process at virtual-time `send`;
//!   it must not sleep or block, only decide.

use std::any::Any;

use sim_core::SimTime;

/// One control packet about to be scheduled for delivery, as shown to a
/// [`DeliveryScheduler`].
pub struct CtrlPoint<'a> {
    /// Sending endpoint (MPI rank).
    pub src: usize,
    /// Destination endpoint.
    pub dst: usize,
    /// Whether the packet rides the intra-node shm channel (reliable;
    /// [`CtrlAction::Drop`] is forbidden) instead of the wire.
    pub shm: bool,
    /// The FIFO arrival instant the cost model computed; `Deliver` uses it
    /// unchanged, `Delay` adds to it.
    pub arrival: SimTime,
    /// The opaque payload. Protocol layers can expose downcast helpers
    /// (e.g. `mpi_sim::packet_kind`) so controllers can label decisions
    /// without this crate learning protocol types.
    pub payload: &'a (dyn Any + Send),
}

/// A scheduler's verdict on one control packet.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CtrlAction {
    /// Deliver at the model-computed arrival time (bit-identical to the
    /// unhooked fabric).
    Deliver,
    /// Deliver `ns` nanoseconds later than the model-computed arrival,
    /// after traffic that would otherwise queue behind this packet.
    Delay(u64),
    /// Never deliver. Only legal for wire packets; the protocol above must
    /// recover by retransmission. Panics on shm packets.
    Drop,
}

/// Owns the delivery order of in-flight control packets. Implementations
/// must be deterministic functions of the observed packet sequence — the
/// whole point is replayable schedules.
pub trait DeliveryScheduler: Send + Sync {
    /// Decide the fate of one control packet.
    fn on_ctrl(&self, point: &CtrlPoint<'_>) -> CtrlAction;
}

/// The implicit default: FIFO delivery, every packet at its model arrival
/// time. Installing this explicitly is identical to installing nothing.
pub struct FifoScheduler;

impl DeliveryScheduler for FifoScheduler {
    fn on_ctrl(&self, _point: &CtrlPoint<'_>) -> CtrlAction {
        CtrlAction::Deliver
    }
}
