//! Deterministic fault injection for the fabric.
//!
//! A [`FaultSpec`] attaches a seeded xorshift64* stream to the fabric and
//! uses it to perturb three operations, mirroring the transient failures a
//! real InfiniBand deployment survives:
//!
//! * **control-packet loss / delay** — [`Nic::send_ctrl`](crate::Nic::send_ctrl)
//!   traffic (RTS/CTS/FIN/credit style messages) can be dropped after the
//!   sender's CQE or delivered late and out of order;
//! * **RDMA write failure** — an RDMA write can complete with an error CQE
//!   ([`Completion::is_error`](sim_core::Completion::is_error)) and place
//!   no data;
//! * **registration failure** — a per-node pin limit makes
//!   [`Nic::try_register`](crate::Nic::try_register) fail once too many
//!   bytes are pinned, like `ibv_reg_mr` hitting `RLIMIT_MEMLOCK`.
//!
//! Because the simulation is cooperatively scheduled and the stream is
//! seeded, a fault campaign replays **bit-identically**: same seed, same
//! drops, same timings. Every injected fault is counted through
//! [`sim_core::instrument::global()`] (`fault.ctrl_drop`, `fault.ctrl_delay`,
//! `fault.rdma_error`, `fault.desc_fetch`, `fault.reg_fail`) so campaigns
//! are observable.

use sim_core::lock::Mutex;
use xorshift::XorShift64;

/// What faults to inject. Probabilities are in `[0, 1]`; the default from
/// [`FaultSpec::seeded`] injects nothing, so individual faults can be
/// switched on with struct-update syntax:
///
/// ```
/// use ib_sim::FaultSpec;
/// let spec = FaultSpec {
///     ctrl_drop: 0.10,
///     rdma_error: 0.02,
///     ..FaultSpec::seeded(42)
/// };
/// assert!(spec.ctrl_delay == 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Seed of the xorshift64* stream driving every fault decision.
    pub seed: u64,
    /// Probability that a control packet is dropped (after the sender-side
    /// CQE — the loss is invisible to the sending HCA, as with a switch
    /// dropping an already-acked packet toward a slow receive queue).
    pub ctrl_drop: f64,
    /// Probability that a control packet is delayed by [`delay_ns`]
    /// (delivered late, possibly overtaken by later packets).
    ///
    /// [`delay_ns`]: FaultSpec::delay_ns
    pub ctrl_delay: f64,
    /// Extra delivery latency applied to delayed control packets, ns.
    pub delay_ns: u64,
    /// Probability that an RDMA write completes with an error CQE and
    /// places no data.
    pub rdma_error: f64,
    /// Probability that a scatter/gather offload post fails while the HCA
    /// fetches its wire descriptor from host memory: the op completes with
    /// an error CQE ([`Completion::is_error`](sim_core::Completion::is_error))
    /// and places no data, exactly like a failed RDMA write.
    pub desc_fetch_error: f64,
    /// Per-node pin limit, bytes: [`Nic::try_register`](crate::Nic::try_register)
    /// fails when granting it would push the node's pinned footprint past
    /// this. `None` = unlimited.
    pub pin_limit_bytes: Option<usize>,
}

impl FaultSpec {
    /// A spec with the given seed and **no** faults enabled. Enable
    /// individual faults with struct-update syntax.
    pub fn seeded(seed: u64) -> Self {
        FaultSpec {
            seed,
            ctrl_drop: 0.0,
            ctrl_delay: 0.0,
            delay_ns: 50_000,
            rdma_error: 0.0,
            desc_fetch_error: 0.0,
            pin_limit_bytes: None,
        }
    }
}

/// Seeded fault state shared by every NIC of one fabric.
pub(crate) struct FaultState {
    spec: FaultSpec,
    rng: Mutex<XorShift64>,
}

impl FaultState {
    pub(crate) fn new(spec: FaultSpec) -> Self {
        let rng = Mutex::new(XorShift64::new(spec.seed));
        FaultState { spec, rng }
    }

    /// One Bernoulli draw from the shared stream. Draw order is
    /// deterministic because simulation processes run cooperatively.
    fn roll(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        // 53 uniform bits -> [0, 1). Exact and platform-independent.
        let u = (self.rng.lock().next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Should this control packet be dropped?
    pub(crate) fn drop_ctrl(&self) -> bool {
        self.roll(self.spec.ctrl_drop)
    }

    /// Extra delivery delay for this control packet, if any, ns.
    pub(crate) fn delay_ctrl(&self) -> Option<u64> {
        self.roll(self.spec.ctrl_delay)
            .then_some(self.spec.delay_ns)
    }

    /// Should this RDMA write fail with an error CQE?
    pub(crate) fn rdma_error(&self) -> bool {
        self.roll(self.spec.rdma_error)
    }

    /// Should this scatter/gather offload post fail its descriptor fetch?
    pub(crate) fn desc_fetch_error(&self) -> bool {
        self.roll(self.spec.desc_fetch_error)
    }

    /// The per-node pin limit, if one is configured.
    pub(crate) fn pin_limit(&self) -> Option<usize> {
        self.spec.pin_limit_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_fires_and_draws_nothing() {
        let st = FaultState::new(FaultSpec::seeded(1));
        for _ in 0..100 {
            assert!(!st.drop_ctrl());
            assert!(st.delay_ctrl().is_none());
            assert!(!st.rdma_error());
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let mk = || {
            FaultState::new(FaultSpec {
                ctrl_drop: 0.3,
                rdma_error: 0.1,
                ..FaultSpec::seeded(77)
            })
        };
        let (a, b) = (mk(), mk());
        for _ in 0..1000 {
            assert_eq!(a.drop_ctrl(), b.drop_ctrl());
            assert_eq!(a.rdma_error(), b.rdma_error());
        }
    }

    #[test]
    fn certain_drop_always_fires() {
        let st = FaultState::new(FaultSpec {
            ctrl_drop: 1.0,
            ..FaultSpec::seeded(9)
        });
        for _ in 0..50 {
            assert!(st.drop_ctrl());
        }
    }
}
