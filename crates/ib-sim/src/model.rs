//! Network cost model for the simulated InfiniBand fabric.

use sim_core::SimDur;

/// Analytic cost model of one HCA + switch fabric, calibrated to Mellanox
/// QDR (MT26428) as used in the paper's testbed.
#[derive(Clone, Debug)]
pub struct NetModel {
    /// One-way wire + switch latency (ns).
    pub wire_lat_ns: u64,
    /// Effective point-to-point bandwidth, bytes per second. QDR signals at
    /// 40 Gb/s; 8b/10b encoding and protocol overheads leave ~3.2 GB/s.
    pub bw_bps: f64,
    /// CPU cost of posting one verb (ns).
    pub post_overhead_ns: u64,
    /// Modeled wire size of a control message (RTS/CTS/FIN), bytes.
    pub ctrl_bytes: usize,
    /// Base cost of registering a memory region (ns).
    pub reg_base_ns: u64,
    /// Additional registration cost per 4 KiB page (ns).
    pub reg_per_page_ns: u64,
    /// Per-entry descriptor-fetch latency of the scatter/gather offload
    /// engine (ns): each entry of a posted wire descriptor costs one
    /// DMA read of the descriptor ring from host memory before the HCA
    /// can walk the strided run it describes.
    pub offload_entry_ns: u64,
}

impl NetModel {
    /// Calibrated model for the paper's QDR InfiniBand cluster.
    pub fn qdr() -> Self {
        NetModel {
            wire_lat_ns: 1_300,
            bw_bps: 3.2e9,
            post_overhead_ns: 300,
            ctrl_bytes: 64,
            reg_base_ns: 10_000,
            reg_per_page_ns: 150,
            offload_entry_ns: 250,
        }
    }

    /// Time the wire is occupied by a `bytes`-sized transfer.
    pub fn serialize_time(&self, bytes: usize) -> SimDur {
        SimDur::from_nanos((bytes as f64 / self.bw_bps * 1e9).round() as u64)
    }

    /// Cost of registering `bytes` of host memory.
    pub fn reg_time(&self, bytes: usize) -> SimDur {
        let pages = bytes.div_ceil(4096) as u64;
        SimDur::from_nanos(self.reg_base_ns + pages * self.reg_per_page_ns)
    }
}

/// Cost model of the intra-node shared-memory channel. One copy engine per
/// node (the kernel-assisted copy path serializes through the node's memory
/// bus), no HCA involvement, no fault injection — losses modeled by the
/// fault layer happen in the switch fabric, which intra-node traffic never
/// crosses.
#[derive(Clone, Debug)]
pub struct ShmModel {
    /// Queue visibility latency after the copy completes (ns): the
    /// receiver's poll noticing the flag flip.
    pub latency_ns: u64,
    /// Large-copy memcpy bandwidth through shared pages, bytes per second.
    pub bw_bps: f64,
    /// CPU cost of posting one shm operation (ns) — cheaper than a verb.
    pub post_overhead_ns: u64,
}

impl ShmModel {
    /// Calibrated for the paper's Westmere-era hosts: ~4 GB/s sustained
    /// copy bandwidth through shared pages, sub-microsecond queue latency.
    pub fn westmere() -> Self {
        ShmModel {
            latency_ns: 300,
            bw_bps: 4.0e9,
            post_overhead_ns: 100,
        }
    }

    /// Time the node's shm copy engine is occupied by a `bytes` copy.
    pub fn copy_time(&self, bytes: usize) -> SimDur {
        SimDur::from_nanos((bytes as f64 / self.bw_bps * 1e9).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qdr_numbers_are_sane() {
        let m = NetModel::qdr();
        // 1 MiB at 3.2 GB/s is ~328 us.
        let t = m.serialize_time(1 << 20).as_micros_f64();
        assert!((t - 327.7).abs() < 2.0, "got {t}");
        // Small-message latency is dominated by wire latency.
        assert!(m.serialize_time(64).as_nanos() < m.wire_lat_ns);
    }

    #[test]
    fn reg_time_scales_with_pages() {
        let m = NetModel::qdr();
        assert!(m.reg_time(1 << 20) > m.reg_time(4096));
        assert_eq!(m.reg_time(1).as_nanos(), m.reg_base_ns + m.reg_per_page_ns);
    }
}
