//! Cluster topology: which physical node each endpoint (rank) lives on.
//!
//! The paper's testbed is 8 nodes with up to 4 processes per node sharing
//! the node's HCA, PCIe bus and GPU. [`Topology`] is the single source of
//! truth for that mapping: the fabric uses it to share one HCA transmit
//! engine per node and to route co-located traffic over shared memory, and
//! the MPI layer uses it to pick a transport per peer.

use std::sync::Arc;

/// Immutable ranks→nodes mapping. Clones are shallow.
///
/// Node ids are dense: every node id in `0..num_nodes()` hosts at least one
/// endpoint.
#[derive(Clone, Debug)]
pub struct Topology {
    node_of: Arc<Vec<usize>>,
    num_nodes: usize,
}

impl Topology {
    /// One endpoint per node — the pre-topology default, where "rank" and
    /// "node" coincide.
    pub fn one_per_node(n: usize) -> Self {
        Self::uniform(n, 1)
    }

    /// `nodes` nodes with `ppn` endpoints each, blocked: endpoint `r` lives
    /// on node `r / ppn`, so consecutive ranks share a node (the usual
    /// `mpirun` block placement).
    pub fn uniform(nodes: usize, ppn: usize) -> Self {
        assert!(ppn >= 1, "ppn must be >= 1, got {ppn}");
        Topology {
            node_of: Arc::new((0..nodes * ppn).map(|r| r / ppn).collect()),
            num_nodes: nodes,
        }
    }

    /// Arbitrary mapping: `map[r]` is the node of endpoint `r`. Node ids
    /// must be dense (`0..=max` all present); panics otherwise.
    pub fn from_map(map: Vec<usize>) -> Self {
        assert!(!map.is_empty(), "topology must have at least one endpoint");
        let num_nodes = map.iter().copied().max().unwrap() + 1;
        for node in 0..num_nodes {
            assert!(
                map.contains(&node),
                "topology node ids must be dense: node {node} hosts no endpoint"
            );
        }
        Topology {
            node_of: Arc::new(map),
            num_nodes,
        }
    }

    /// Number of endpoints (MPI ranks).
    pub fn num_ranks(&self) -> usize {
        self.node_of.len()
    }

    /// Number of physical nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The node hosting endpoint `rank`. Panics on an out-of-range endpoint.
    pub fn node_of(&self, rank: usize) -> usize {
        assert!(
            rank < self.node_of.len(),
            "no such endpoint {rank} (topology has {} endpoints)",
            self.node_of.len()
        );
        self.node_of[rank]
    }

    /// Whether two endpoints share a physical node. Note `colocated(r, r)`
    /// is true: a rank is co-located with itself.
    pub fn colocated(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Endpoints hosted on `node`, in rank order.
    pub fn ranks_on(&self, node: usize) -> Vec<usize> {
        (0..self.num_ranks())
            .filter(|&r| self.node_of[r] == node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_per_node_is_identity() {
        let t = Topology::one_per_node(4);
        assert_eq!(t.num_ranks(), 4);
        assert_eq!(t.num_nodes(), 4);
        for r in 0..4 {
            assert_eq!(t.node_of(r), r);
        }
        assert!(t.colocated(2, 2));
        assert!(!t.colocated(0, 1));
    }

    #[test]
    fn uniform_blocks_consecutive_ranks() {
        let t = Topology::uniform(2, 4);
        assert_eq!(t.num_ranks(), 8);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert!(t.colocated(0, 3));
        assert!(!t.colocated(3, 4));
        assert_eq!(t.ranks_on(1), vec![4, 5, 6, 7]);
    }

    #[test]
    fn from_map_round_robin() {
        let t = Topology::from_map(vec![0, 1, 0, 1]);
        assert_eq!(t.num_nodes(), 2);
        assert!(t.colocated(0, 2));
        assert!(!t.colocated(0, 1));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn from_map_rejects_gaps() {
        Topology::from_map(vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "no such endpoint 5")]
    fn node_of_out_of_range_panics() {
        Topology::one_per_node(2).node_of(5);
    }
}
