//! Multi-job tenancy: per-job QoS knobs and the typed placement errors.
//!
//! A [`crate::Fabric`] built with [`crate::Fabric::multi_job`] hosts several
//! concurrent jobs. Each job brings its own [`crate::Topology`] over
//! *job-local node slots*; a scheduler later binds those slots to physical
//! nodes with [`crate::Fabric::try_bind_job`]. Until a job is bound its
//! endpoints must not touch the fabric. The per-job [`JobQos`] knobs govern
//! how a bound job shares the hardware it lands on:
//!
//! * **`hca_weight`** — weighted share of a node's HCA transmit engine
//!   while the engine is backlogged (see the arbitration notes on
//!   [`crate::Fabric`]). An idle engine always serves at full rate, so a
//!   sole tenant is bit-identical to a dedicated fabric whatever its
//!   weight.
//! * **`rate_cap`** — optional hard ceiling on the fraction of link
//!   bandwidth the job may use, applied even when the engine is idle
//!   (non-work-conserving, like an HCA rate-limited SL).
//! * **`vbuf_share`** — advisory partition of the MPI layer's vbuf pool;
//!   the fabric itself does not consume it (the world-construction layer
//!   sizes each job's pools from it).
//! * **`share_nodes`** — opt-in to co-placement. Two jobs may only be
//!   bound to overlapping physical node sets when *both* opted in;
//!   otherwise [`crate::Fabric::try_bind_job`] refuses with
//!   [`BindError::NodeOverlap`] instead of silently double-billing the
//!   shared HCA.

use crate::topology::Topology;

/// Per-job quality-of-service knobs on the shared fabric. See the module
/// docs for what each knob means; [`JobQos::default`] is "one fair share,
/// no cap, full vbuf pool, exclusive nodes".
#[derive(Clone, Debug)]
pub struct JobQos {
    /// Weight in the HCA transmit-engine arbitration (>= 1).
    pub hca_weight: u32,
    /// Optional hard cap on the job's fraction of link bandwidth, in
    /// `(0, 1]`. Applied even on an idle engine.
    pub rate_cap: Option<f64>,
    /// Advisory fraction of the MPI vbuf pool this job should get, in
    /// `(0, 1]`. Consumed by the world-construction layer, not the fabric.
    pub vbuf_share: f64,
    /// Whether this job may share physical nodes with other jobs that also
    /// set this flag.
    pub share_nodes: bool,
}

impl Default for JobQos {
    fn default() -> Self {
        JobQos {
            hca_weight: 1,
            rate_cap: None,
            vbuf_share: 1.0,
            share_nodes: false,
        }
    }
}

impl JobQos {
    /// Panic on out-of-range knobs (zero weight, caps outside `(0, 1]`).
    pub fn validate(&self) {
        assert!(self.hca_weight >= 1, "JobQos.hca_weight must be >= 1");
        if let Some(c) = self.rate_cap {
            assert!(
                c > 0.0 && c <= 1.0,
                "JobQos.rate_cap must be in (0, 1], got {c}"
            );
        }
        assert!(
            self.vbuf_share > 0.0 && self.vbuf_share <= 1.0,
            "JobQos.vbuf_share must be in (0, 1], got {}",
            self.vbuf_share
        );
    }
}

/// One tenant of a multi-job fabric: its rank→node-slot topology, QoS
/// knobs and trace/metrics label.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Ranks → job-local node slots (dense `0..nodes`). The physical
    /// placement of those slots is chosen later, at bind time.
    pub topo: Topology,
    /// The job's share of whatever hardware it is bound to.
    pub qos: JobQos,
    /// Scope prefix for every trace lane, sanitizer pool and metrics key
    /// the job's ranks emit — e.g. `"job3."` yields `job3.rank0/proto`
    /// lanes and `job3.rank0.*` metrics. The empty label reproduces the
    /// unprefixed single-job namespace byte for byte.
    pub label: String,
}

impl JobSpec {
    /// A job with default QoS and the conventional `"job{id}."` label.
    pub fn labeled(id: usize, topo: Topology) -> Self {
        JobSpec {
            topo,
            qos: JobQos::default(),
            label: format!("job{id}."),
        }
    }
}

/// Why [`crate::Fabric::try_bind_job`] refused a placement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BindError {
    /// The job is already bound (unbind it first).
    AlreadyBound {
        /// The offending job id.
        job: usize,
    },
    /// The binding names a different number of nodes than the job's
    /// topology has slots.
    WrongCount {
        /// The job being bound.
        job: usize,
        /// Slots the job's topology declares.
        expected: usize,
        /// Nodes the binding supplied.
        got: usize,
    },
    /// A named physical node does not exist.
    BadNode {
        /// The out-of-range node id.
        node: usize,
        /// Physical nodes in the fabric.
        num_nodes: usize,
    },
    /// The binding maps two job node slots onto one physical node.
    DuplicateNode {
        /// The physical node named twice.
        node: usize,
    },
    /// The placement overlaps another bound job's nodes and at least one
    /// of the two jobs did not opt into sharing (`JobQos::share_nodes`).
    /// Refusing here is what keeps per-node HCA counters honest: two
    /// tenants never double-bill one engine without both asking for it.
    NodeOverlap {
        /// The job being bound.
        job: usize,
        /// The already-bound job it collides with.
        other: usize,
        /// One shared physical node (the first found).
        node: usize,
    },
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::AlreadyBound { job } => {
                write!(f, "job {job} is already bound to physical nodes")
            }
            BindError::WrongCount { job, expected, got } => write!(
                f,
                "job {job} has {expected} node slot(s) but the binding names {got} node(s)"
            ),
            BindError::BadNode { node, num_nodes } => {
                write!(f, "no such physical node {node} (fabric has {num_nodes})")
            }
            BindError::DuplicateNode { node } => {
                write!(f, "binding names physical node {node} twice")
            }
            BindError::NodeOverlap { job, other, node } => write!(
                f,
                "job {job} would share physical node {node} with job {other} \
                 without QoS node-sharing enabled on both (set JobQos.share_nodes)"
            ),
        }
    }
}

impl std::error::Error for BindError {}
