//! A tiny deterministic pseudo-random number generator for tests and
//! benchmark harnesses.
//!
//! The workspace builds with no external dependencies, so instead of `rand`
//! the test suites use this xorshift64* generator: fast, seedable, and
//! stable across platforms and releases — identical seeds always produce
//! identical streams, which keeps every test fully reproducible.

#![warn(missing_docs)]

/// An xorshift64* pseudo-random generator (Vigna, 2016). Not cryptographic.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create a generator from a seed. A zero seed is remapped (xorshift
    /// state must be non-zero).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as usize
    }

    /// A uniformly distributed boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fill `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0, i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            let v = r.gen_range(3, 17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = XorShift64::new(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = XorShift64::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
