//! The shared-cluster runner: one [`Sim`] + one multi-job [`Fabric`]
//! hosting every planned job, a scheduler fiber that places arrivals onto
//! physical nodes, and one fiber per rank gated on its job's placement.
//!
//! Determinism doctrine: the whole campaign — arrival instants, placement
//! decisions, QoS arbitration, every rank's protocol schedule — is a pure
//! function of the plan and the fabric seed. The same plan replays bit-
//! identically under [`ExecMode::Event`] and [`ExecMode::Threads`], with
//! tracing on or off.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use gpu_sim::{CostModel, Gpu};
use ib_sim::{Fabric, FaultSpec, JobSpec, NetModel, ShmModel, Topology};
use mpi_sim::staging::BufferStager;
use mpi_sim::{Comm, MpiConfig};
use mv2_gpu_nc::{GpuRankEnv, GpuStager};
use sim_core::lock::Mutex;
use sim_core::{now, sleep, ExecMode, Mailbox, Sim, SimDur, SimTime};
use sim_trace::{LaneKind, Recorder};

use crate::arrivals::JobPlan;

/// How the scheduler maps a job's node slots onto physical nodes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Placement {
    /// A job waits for enough *free* nodes (first-fit, lowest ids) — jobs
    /// queue behind each other but never share an HCA. Overload shows up
    /// as queueing delay.
    Exclusive,
    /// A job is placed immediately on the least-loaded nodes, sharing HCAs
    /// with whoever is already there (every job's QoS must set
    /// `share_nodes`). Overload shows up as link contention, divided by
    /// the jobs' `hca_weight`s.
    Shared,
}

/// Cluster-level knobs for one campaign.
#[derive(Clone)]
pub struct ClusterParams {
    /// Physical nodes (one HCA + one GPU each).
    pub phys_nodes: usize,
    /// Placement policy.
    pub placement: Placement,
    /// Base MPI configuration; each job's `pool_vbufs` is scaled by its
    /// `JobQos::vbuf_share` (floor 4) before its ranks are built.
    pub mpi: MpiConfig,
    /// Process carrier (fibers vs OS threads); `None` = kernel default.
    pub exec: Option<ExecMode>,
    /// Seeded fabric fault injection for resilience campaigns.
    pub faults: Option<FaultSpec>,
    /// Extra declared-but-never-run tenants. A phantom tenant forces the
    /// fabric onto the multi-job arbitration path without adding traffic —
    /// the bit-identity guard runs the same job with 0 and 1 phantoms.
    pub phantom_tenants: usize,
    /// Trace recorder; `None` builds a fresh enabled recorder.
    pub recorder: Option<Recorder>,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            phys_nodes: 8,
            placement: Placement::Exclusive,
            mpi: MpiConfig::default(),
            exec: None,
            faults: None,
            phantom_tenants: 0,
            recorder: None,
        }
    }
}

/// What happened to one job of the campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobOutcome {
    /// Application family name.
    pub kind: &'static str,
    /// Heavy-tail scale factor.
    pub scale: u32,
    /// Ranks the job ran.
    pub ranks: usize,
    /// Arrival instant (ns of virtual time).
    pub arrive_ns: u64,
    /// Placement instant — bind + gate release (ns).
    pub start_ns: u64,
    /// Completion instant — last rank past finalize (ns).
    pub end_ns: u64,
    /// Physical nodes the job ran on.
    pub nodes: Vec<usize>,
}

impl JobOutcome {
    /// Arrival-to-completion response time, ns.
    pub fn response_ns(&self) -> u64 {
        self.end_ns - self.arrive_ns
    }

    /// Placement-to-completion service time, ns.
    pub fn service_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// A full campaign's result.
#[derive(Clone)]
pub struct ClusterOutcome {
    /// Per-job timings, in plan order.
    pub jobs: Vec<JobOutcome>,
    /// Virtual completion time of the whole campaign, ns.
    pub makespan_ns: u64,
    /// The recorder the campaign traced into (lanes + metrics registry).
    pub recorder: Recorder,
}

/// Run a planned job mix on a shared cluster. Arrival instants are open
/// loop (the plan's, never adjusted); placement and QoS behave per
/// `params`. Panics on any rank failure — every body self-verifies, so a
/// completed campaign is also a correctness statement.
pub fn run_mix(params: &ClusterParams, plans: &[JobPlan]) -> ClusterOutcome {
    assert!(!plans.is_empty(), "empty job plan");
    for w in plans.windows(2) {
        assert!(
            w[0].arrive_ns <= w[1].arrive_ns,
            "job plan must be sorted by arrival"
        );
    }
    if params.placement == Placement::Shared {
        for (j, p) in plans.iter().enumerate() {
            assert!(
                p.qos.share_nodes,
                "job {j}: Placement::Shared needs JobQos::share_nodes on every job"
            );
        }
    }
    let njobs = plans.len();
    let mut specs: Vec<JobSpec> = plans
        .iter()
        .enumerate()
        .map(|(j, p)| JobSpec {
            topo: p.job.topo(),
            qos: p.qos.clone(),
            label: format!("job{j}."),
        })
        .collect();
    for k in 0..params.phantom_tenants {
        specs.push(JobSpec::labeled(njobs + k, Topology::one_per_node(1)));
    }
    for (j, p) in plans.iter().enumerate() {
        assert!(
            p.job.ranks() <= params.phys_nodes,
            "job {j} needs {} nodes but the cluster has {}",
            p.job.ranks(),
            params.phys_nodes
        );
    }

    let sim = Sim::new();
    if let Some(mode) = params.exec {
        sim.set_exec_mode(mode);
    }
    let fabric = Fabric::multi_job(
        params.phys_nodes,
        specs,
        NetModel::qdr(),
        ShmModel::westmere(),
        params.faults.clone(),
    );
    fabric.attach_event_pump(&sim);
    let rec = params.recorder.clone().unwrap_or_default();
    fabric.attach_recorder(&rec);

    // One GPU per physical node, shared by every tenant bound there. The
    // queue-wait counters (how long each tenant's work sat behind the
    // other's on the copy/compute engines) go into the registry separately
    // from the per-GPU span lanes.
    let gpus: Vec<Gpu> = (0..params.phys_nodes)
        .map(|node| {
            let gpu = Gpu::new(node as u32, CostModel::tesla_c2050(), 3 << 30);
            gpu.attach_recorder(&rec);
            rec.register_counters(&format!("gpu{node}.queue"), gpu.queue_waits());
            gpu
        })
        .collect();

    // Per-job lifecycle lanes (arrive/start/done instants) and plumbing.
    let life: Vec<_> = (0..njobs)
        .map(|j| rec.lane(&format!("job{j}"), "lifecycle", LaneKind::Proto))
        .collect();
    let gates: Vec<Vec<Mailbox<()>>> = plans
        .iter()
        .map(|p| (0..p.job.ranks()).map(|_| Mailbox::new()).collect())
        .collect();
    let done: Mailbox<usize> = Mailbox::new();
    let starts: Arc<Mutex<Vec<Option<SimTime>>>> = Arc::new(Mutex::new(vec![None; njobs]));
    let ends: Arc<Mutex<Vec<Option<SimTime>>>> = Arc::new(Mutex::new(vec![None; njobs]));
    let placed: Arc<Mutex<Vec<Vec<usize>>>> = Arc::new(Mutex::new(vec![Vec::new(); njobs]));

    // Rank fibers: all spawned at t = 0, each blocked on its gate until
    // the scheduler places its job. Only after the gate opens may the rank
    // touch the fabric (binding exists from then on).
    for (j, plan) in plans.iter().enumerate() {
        let ranks = plan.job.ranks();
        let remaining = Arc::new(AtomicUsize::new(ranks));
        for (r, gate) in gates[j].iter().enumerate() {
            let fabric = fabric.clone();
            let gpus = gpus.clone();
            let gate = gate.clone();
            let done = done.clone();
            let rec = rec.clone();
            let ends = Arc::clone(&ends);
            let remaining = Arc::clone(&remaining);
            let life = life[j].clone();
            let job = plan.job;
            let qos = plan.qos.clone();
            let mut cfg = params.mpi.clone();
            sim.spawn(format!("job{j}.rank{r}"), move || {
                gate.recv();
                let nic = fabric.job_nic(j, r);
                let gpu = gpus[nic.physical_node()].clone();
                let scope = format!("{}rank{r}", nic.scope_prefix());
                let stager = GpuStager::with_scope(gpu.clone(), &scope, &rec);
                let stagers: Arc<Vec<Box<dyn BufferStager>>> =
                    Arc::new(vec![Box::new(stager) as Box<dyn BufferStager>]);
                // The vbuf pool is partitioned by the job's advisory share
                // (never below the pipeline's minimum working set).
                cfg.pool_vbufs = ((cfg.pool_vbufs as f64 * qos.vbuf_share).round() as usize).max(4);
                let comm = Comm::create_traced(nic, r, ranks, cfg, stagers, &rec);
                let env = GpuRankEnv {
                    comm,
                    gpu,
                    recorder: rec,
                };
                job.run(&env);
                env.comm.finalize();
                if remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
                    ends.lock()[j] = Some(now());
                    life.instant_now("done");
                    done.send(j);
                }
            });
        }
    }

    // The scheduler fiber: walk the plan in arrival order; at each arrival
    // reclaim finished jobs, choose nodes per the placement policy, bind,
    // and open the job's gates.
    {
        let fabric = fabric.clone();
        let placement = params.placement;
        let phys = params.phys_nodes;
        let starts = Arc::clone(&starts);
        let placed = Arc::clone(&placed);
        let plans: Vec<JobPlan> = plans.to_vec();
        sim.spawn("scheduler", move || {
            let mut free: BTreeSet<usize> = (0..phys).collect();
            let mut tenants = vec![0usize; phys];
            let release = |j: usize, free: &mut BTreeSet<usize>, tenants: &mut Vec<usize>| {
                let nodes = fabric
                    .job_binding(j)
                    .expect("completed job must still be bound");
                fabric.unbind_job(j);
                for n in nodes {
                    tenants[n] -= 1;
                    if tenants[n] == 0 {
                        free.insert(n);
                    }
                }
            };
            for (j, plan) in plans.iter().enumerate() {
                let at = SimTime::ZERO + SimDur::from_nanos(plan.arrive_ns);
                if now() < at {
                    sleep(at.since(now()));
                }
                life[j].instant_now("arrive");
                while let Some(d) = done.try_recv() {
                    release(d, &mut free, &mut tenants);
                }
                let need = plan.job.ranks();
                let nodes: Vec<usize> = match placement {
                    Placement::Exclusive => {
                        while free.len() < need {
                            let d = done.recv();
                            release(d, &mut free, &mut tenants);
                        }
                        let picked: Vec<usize> = free.iter().take(need).copied().collect();
                        for n in &picked {
                            free.remove(n);
                        }
                        picked
                    }
                    Placement::Shared => {
                        let mut order: Vec<usize> = (0..phys).collect();
                        order.sort_by_key(|&n| (tenants[n], n));
                        let picked: Vec<usize> = order.into_iter().take(need).collect();
                        for &n in &picked {
                            free.remove(&n);
                        }
                        picked
                    }
                };
                for &n in &nodes {
                    tenants[n] += 1;
                }
                fabric.bind_job(j, &nodes);
                starts.lock()[j] = Some(now());
                life[j].instant_now("start");
                placed.lock()[j] = nodes;
                for gate in &gates[j] {
                    gate.send(());
                }
            }
            // Later completions need no reclamation — the campaign is over
            // once every rank fiber drains; leftover `done` tokens are
            // harmless.
        });
    }

    let end = sim.run();
    let starts = starts.lock().clone();
    let ends = ends.lock().clone();
    let placed = placed.lock().clone();
    let jobs = plans
        .iter()
        .enumerate()
        .map(|(j, p)| JobOutcome {
            kind: p.job.kind.name(),
            scale: p.job.scale,
            ranks: p.job.ranks(),
            arrive_ns: p.arrive_ns,
            start_ns: starts[j].expect("job never started").as_nanos(),
            end_ns: ends[j].expect("job never finished").as_nanos(),
            nodes: placed[j].clone(),
        })
        .collect();
    ClusterOutcome {
        jobs,
        makespan_ns: end.as_nanos(),
        recorder: rec,
    }
}

/// Service time of one job running alone on a dedicated-size cluster —
/// the slowdown denominator. Same runner, a single-entry plan arriving at
/// t = 0 with default QoS.
pub fn run_isolated(job: crate::workload::SizedJob, recorder: Option<Recorder>) -> JobOutcome {
    let params = ClusterParams {
        phys_nodes: job.ranks(),
        recorder,
        ..ClusterParams::default()
    };
    let plan = vec![JobPlan {
        job,
        arrive_ns: 0,
        qos: ib_sim::JobQos::default(),
    }];
    run_mix(&params, &plan).jobs.remove(0)
}
