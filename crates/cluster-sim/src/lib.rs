//! # cluster-sim — multi-job shared-cluster simulation
//!
//! Everything the rest of the workspace simulates one *job* at a time;
//! this crate simulates the *cluster*: an open-loop stream of MPI/GPU jobs
//! (Poisson arrivals, heavy-tailed sizes) scheduled onto a bounded set of
//! physical nodes, all sharing one [`ib_sim::Fabric`] built with
//! [`ib_sim::Fabric::multi_job`]. Per-job QoS ([`ib_sim::JobQos`]) governs
//! how co-located tenants split each node's HCA transmit engine, whether a
//! job's link rate is capped, and how the MPI vbuf pool is partitioned.
//!
//! Three pieces:
//!
//! * [`workload`] — five self-verifying application bodies (halo3d,
//!   stencil2d, transpose, gradient allreduce, OSU ping-pong), each sized
//!   by a heavy-tailed scale factor.
//! * [`arrivals`] — the seeded open-loop generator: exponential
//!   inter-arrival gaps over the virtual clock, bounded-Pareto sizes, a
//!   weighted kind mix. Pure (pre-simulation), so a plan replays bit for
//!   bit.
//! * [`run`] — the runner: one scheduler fiber places arrivals
//!   (exclusively on free nodes, or shared by least-load with weighted
//!   HCA arbitration), one gated fiber per rank runs the job body through
//!   the full MV2-GPU-NC stack, and per-job lifecycle instants + scoped
//!   metrics land in one trace recorder.
//!
//! The `job_mix` bench bin (crate `bench`) drives campaigns from here and
//! commits slowdown distributions and QoS guards to
//! `results/BENCH_jobmix.json`.

pub mod arrivals;
pub mod run;
pub mod workload;

pub use arrivals::{generate, JobPlan, MixParams};
pub use run::{run_isolated, run_mix, ClusterOutcome, ClusterParams, JobOutcome, Placement};
pub use workload::{JobKind, SizedJob};
