//! Seeded open-loop job arrivals: Poisson arrival instants over the
//! virtual clock with a heavy-tailed job-size mix.
//!
//! The generator is pure — it runs *before* the simulation and produces a
//! fixed [`JobPlan`] list, because every tenant of a multi-job fabric is
//! declared up front ([`ib_sim::Fabric::multi_job`]). Open-loop means the
//! instants never react to completions: when the cluster falls behind, the
//! backlog (and the per-job slowdown tail) grows, which is exactly the
//! overload signal the `job_mix` harness measures.

use ib_sim::JobQos;
use xorshift::XorShift64;

use crate::workload::{JobKind, SizedJob};

/// One planned job: what runs, when it arrives, and its QoS share.
#[derive(Clone, Debug)]
pub struct JobPlan {
    /// The sized application body.
    pub job: SizedJob,
    /// Arrival instant, nanoseconds of virtual time from simulation start.
    pub arrive_ns: u64,
    /// The job's share of whatever hardware it is placed on.
    pub qos: JobQos,
}

/// Arrival-process parameters.
#[derive(Clone, Debug)]
pub struct MixParams {
    /// PRNG seed; same seed, same plan, bit for bit.
    pub seed: u64,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Mean inter-arrival gap in microseconds of virtual time (Poisson
    /// process: exponential gaps with this mean). Halving it doubles the
    /// offered load.
    pub mean_interarrival_us: f64,
}

/// A uniform draw in (0, 1) — never exactly 0, so `ln` stays finite.
fn u01(rng: &mut XorShift64) -> f64 {
    ((rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// Bounded-Pareto work multiplier in `1..=8` (alpha 1.5): most jobs draw
/// 1-2, a heavy tail draws the full 8x.
fn pareto_scale(rng: &mut XorShift64) -> u32 {
    const ALPHA: f64 = 1.5;
    const L: f64 = 1.0;
    const H: f64 = 8.0;
    let u = u01(rng);
    let x = L / (1.0 - u * (1.0 - (L / H).powf(ALPHA))).powf(1.0 / ALPHA);
    (x.round() as u32).clamp(1, 8)
}

/// Weighted kind mix: short latency-bound jobs dominate, the rank-8
/// halo3d is the rare big tenant.
fn pick_kind(rng: &mut XorShift64) -> JobKind {
    // Cumulative percentage thresholds over JobKind::all() order.
    const CUM: [u32; 5] = [15, 40, 60, 80, 100];
    let roll = (rng.next_u64() % 100) as u32;
    let idx = CUM.iter().position(|&c| roll < c).unwrap();
    JobKind::all()[idx]
}

/// Generate the arrival plan: `p.jobs` jobs with exponential inter-arrival
/// gaps, heavy-tailed scales and default (fair, uncapped) QoS. Callers
/// overlay QoS weights afterwards when the experiment calls for skewed
/// shares.
pub fn generate(p: &MixParams) -> Vec<JobPlan> {
    assert!(p.jobs > 0, "need at least one job");
    assert!(
        p.mean_interarrival_us > 0.0,
        "mean inter-arrival must be positive"
    );
    let mut rng = XorShift64::new(p.seed);
    let mut t_ns = 0.0f64;
    (0..p.jobs)
        .map(|_| {
            t_ns += -u01(&mut rng).ln() * p.mean_interarrival_us * 1e3;
            JobPlan {
                job: SizedJob {
                    kind: pick_kind(&mut rng),
                    scale: pareto_scale(&mut rng),
                },
                arrive_ns: t_ns as u64,
                qos: JobQos::default(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let p = MixParams {
            seed: 42,
            jobs: 50,
            mean_interarrival_us: 200.0,
        };
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn arrivals_are_monotone_and_scales_bounded() {
        let plan = generate(&MixParams {
            seed: 7,
            jobs: 200,
            mean_interarrival_us: 100.0,
        });
        let mut last = 0;
        for p in &plan {
            assert!(p.arrive_ns >= last);
            last = p.arrive_ns;
            assert!((1..=8).contains(&p.job.scale));
        }
        // The tail exists: some job drew a scale above the median bucket.
        assert!(plan.iter().any(|p| p.job.scale >= 4), "no heavy tail drawn");
        // Every kind shows up across 200 draws.
        for kind in JobKind::all() {
            assert!(
                plan.iter().any(|p| p.job.kind == kind),
                "{} never drawn",
                kind.name()
            );
        }
    }

    #[test]
    fn halving_the_gap_roughly_doubles_the_rate() {
        let slow = generate(&MixParams {
            seed: 3,
            jobs: 100,
            mean_interarrival_us: 400.0,
        });
        let fast = generate(&MixParams {
            seed: 3,
            jobs: 100,
            mean_interarrival_us: 200.0,
        });
        let span = |v: &[JobPlan]| v.last().unwrap().arrive_ns as f64;
        let ratio = span(&slow) / span(&fast);
        assert!(
            (1.8..=2.2).contains(&ratio),
            "span ratio {ratio} not ~2 for halved gap"
        );
    }
}
