//! The job zoo: self-verifying MPI application bodies, each sized by a
//! small heavy-tailed scale factor. Five families form the arrival mix;
//! a sixth host-bandwidth [`JobKind::Stream`] serves as the HCA QoS
//! probe.
//!
//! Every body runs against a [`GpuRankEnv`] exactly like a dedicated
//! [`mv2_gpu_nc::GpuCluster`] job would, so the same code serves dedicated
//! baseline runs and tenant runs on a shared fabric. Bodies verify their
//! own numerics where that is cheap (the transpose is bit-exact against
//! the serial reference, the gradient loop matches the serial training
//! loop bit for bit), so a mixed campaign doubles as a correctness check
//! of the staging pipeline under contention.

use hostmem::{bytes_to_scalars, scalars_to_bytes, HostBuf};
use ib_sim::Topology;
use mpi_sim::{Datatype, ReduceOp};
use mv2_gpu_nc::baselines::{fill_vector, verify_vector, VectorXfer};
use mv2_gpu_nc::GpuRankEnv;

use coll_apps::gradient::{local_grad, serial_gradient};
use coll_apps::transpose::{element, serial_transpose};
use gpu_sim::Loc;

/// The application families: five mix tenants plus the host-bandwidth
/// QoS probe.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// 3-D Jacobi with six-face subarray halo exchange (8 ranks, 2x2x2).
    Halo3d,
    /// SHOC Stencil2D with column-datatype halos (4 ranks, 2x2).
    Stencil2d,
    /// Distributed matrix transpose over `alltoallv` of strided columns
    /// (4 ranks).
    Transpose,
    /// Data-parallel gradient allreduce (4 ranks).
    Gradient,
    /// OSU-style device-to-device ping-pong over the paper's vector
    /// datatype (2 ranks).
    Osu,
    /// Host-to-host bandwidth stream (2 ranks): back-to-back 256 KiB
    /// contiguous messages with no GPU staging, so the HCA — not the PCIe
    /// copy engine — is the saturated resource. Not part of the arrival
    /// mix; this is the instrument for HCA QoS experiments (GPU-staged
    /// bodies rarely backlog a QDR link because the shared copy engine
    /// paces their chunks below link rate).
    Stream,
}

impl JobKind {
    /// Short stable name (JSON keys, trace labels).
    pub fn name(self) -> &'static str {
        match self {
            JobKind::Halo3d => "halo3d",
            JobKind::Stencil2d => "stencil2d",
            JobKind::Transpose => "transpose",
            JobKind::Gradient => "gradient",
            JobKind::Osu => "osu",
            JobKind::Stream => "stream",
        }
    }

    /// Ranks this kind launches.
    pub fn ranks(self) -> usize {
        match self {
            JobKind::Halo3d => 8,
            JobKind::Stencil2d | JobKind::Transpose | JobKind::Gradient => 4,
            JobKind::Osu | JobKind::Stream => 2,
        }
    }

    /// The arrival generator's kind mix, in mix-weight order
    /// ([`JobKind::Stream`] is deliberately absent — it exists as a QoS
    /// probe, not a tenant family).
    pub fn all() -> [JobKind; 5] {
        [
            JobKind::Halo3d,
            JobKind::Stencil2d,
            JobKind::Transpose,
            JobKind::Gradient,
            JobKind::Osu,
        ]
    }
}

/// One sized job: a kind plus its heavy-tailed scale factor (1..=8; the
/// arrival generator draws it from a bounded Pareto, so most jobs are
/// small and a few are ~8x the work).
#[derive(Copy, Clone, Debug)]
pub struct SizedJob {
    /// Application family.
    pub kind: JobKind,
    /// Work multiplier in `1..=8` (iterations / problem size).
    pub scale: u32,
}

impl SizedJob {
    /// Ranks this job launches.
    pub fn ranks(&self) -> usize {
        self.kind.ranks()
    }

    /// The job's rank → node-slot topology (one rank per node slot; node
    /// sharing across *jobs* is the scheduler's business, not the
    /// topology's).
    pub fn topo(&self) -> Topology {
        Topology::one_per_node(self.ranks())
    }

    /// Run this job's body on one rank. Must be called once per rank of
    /// [`SizedJob::ranks`], with `env.comm` sized accordingly.
    pub fn run(&self, env: &GpuRankEnv) {
        let s = self.scale as usize;
        match self.kind {
            JobKind::Halo3d => run_halo3d(env, s),
            JobKind::Stencil2d => run_stencil(env, s),
            JobKind::Transpose => run_transpose(env, s),
            JobKind::Gradient => run_gradient(env, s),
            JobKind::Osu => run_osu(env, s),
            JobKind::Stream => run_stream(env, s),
        }
    }
}

/// 3-D Jacobi: `scale` iterations on a fixed 4^3 local block, MV2 variant
/// (device buffers + subarray datatypes).
fn run_halo3d(env: &GpuRankEnv, scale: usize) {
    let p = halo3d::Halo3dParams {
        grid: (2, 2, 2),
        local: (4, 4, 4),
        iters: scale,
    };
    let mut rank = halo3d::Halo3dRank::<f32>::new(env, p);
    for _ in 0..p.iters {
        rank.step(halo3d::Variant::Mv2);
    }
    rank.free();
}

/// SHOC Stencil2D: `scale` iterations on a 16x16 interior, MV2 variant.
fn run_stencil(env: &GpuRankEnv, scale: usize) {
    let p = stencil2d::StencilParams {
        py: 2,
        px: 2,
        rows: 16,
        cols: 16,
        iters: scale,
    };
    let mut rank = stencil2d::StencilRank::<f32>::new(env, p);
    for _ in 0..p.iters {
        rank.step(stencil2d::Variant::Mv2);
    }
    rank.free();
}

/// Distributed N x N transpose over `alltoallv` of strided-column tiles on
/// device buffers, bit-exact against [`serial_transpose`]. N = 16 * scale.
fn run_transpose(env: &GpuRankEnv, scale: usize) {
    let comm = &env.comm;
    let (me, np) = (comm.rank(), comm.size());
    let n = 16 * scale;
    let b = n / np;
    let row_bytes = n * 8;

    let mine: Vec<f64> = (0..b)
        .flat_map(|r| (0..n).map(move |k| element(n, me * b + r, k)))
        .collect();
    let send_host = HostBuf::from_vec(scalars_to_bytes(&mine));
    let recv_host = HostBuf::alloc(b * row_bytes);
    let d_send = env.gpu.malloc(b * row_bytes);
    let d_recv = env.gpu.malloc(b * row_bytes);
    env.gpu.memcpy(d_send, send_host.base(), b * row_bytes);

    let f64t = Datatype::double();
    f64t.commit();
    let col = Datatype::hvector(b, 1, row_bytes as isize, &f64t);
    let tile_cols: Vec<(usize, isize)> = (0..b).map(|c| (1, (c * 8) as isize)).collect();
    let stile = Datatype::hindexed(&tile_cols, &col);
    stile.commit();
    let rtile = Datatype::hvector(b, b, row_bytes as isize, &f64t);
    rtile.commit();

    let counts = vec![1usize; np];
    let displs: Vec<usize> = (0..np).map(|j| j * b * 8).collect();
    comm.barrier();
    comm.alltoallv(
        Loc::Device(d_send),
        &counts,
        &displs,
        &stile,
        Loc::Device(d_recv),
        &counts,
        &displs,
        &rtile,
    );

    env.gpu.memcpy(recv_host.base(), d_recv, b * row_bytes);
    env.gpu.free(d_send);
    env.gpu.free(d_recv);
    let block = bytes_to_scalars::<f64>(&recv_host.read(0, b * row_bytes));
    let want = serial_transpose(n);
    assert_eq!(
        block.as_slice(),
        &want[me * b * n..(me + 1) * b * n],
        "transpose rank {me} corrupted under contention (n = {n})"
    );
}

/// Two training steps of a `512 * scale`-parameter gradient allreduce on
/// device buffers, bit-exact against [`serial_gradient`].
fn run_gradient(env: &GpuRankEnv, scale: usize) {
    let comm = &env.comm;
    let me = comm.rank();
    let (params, steps) = (512 * scale, 2);
    let bytes = params * 4;
    let f32t = Datatype::float();
    f32t.commit();

    let grad_host = HostBuf::alloc(bytes);
    let sum_host = HostBuf::alloc(bytes);
    let d_grad = env.gpu.malloc(bytes);
    let d_sum = env.gpu.malloc(bytes);

    let mut w = vec![0f32; params];
    comm.barrier();
    for step in 0..steps {
        let grad: Vec<f32> = (0..params).map(|k| local_grad(me, step, k)).collect();
        grad_host.write(0, &scalars_to_bytes(&grad));
        env.gpu.memcpy(d_grad, grad_host.base(), bytes);
        comm.allreduce(
            Loc::Device(d_grad),
            Loc::Device(d_sum),
            params,
            &f32t,
            ReduceOp::Sum,
        );
        env.gpu.memcpy(sum_host.base(), d_sum, bytes);
        let summed = bytes_to_scalars::<f32>(&sum_host.read(0, bytes));
        for (wk, g) in w.iter_mut().zip(&summed) {
            *wk -= 0.125 * g;
        }
    }
    env.gpu.free(d_grad);
    env.gpu.free(d_sum);
    assert_eq!(
        w,
        serial_gradient(params, steps, comm.size()),
        "gradient rank {me} diverged under contention ({params} params)"
    );
}

/// OSU-style ping-pong: four warm+timed round trips of the paper's vector
/// datatype (`8 KiB * scale` of payload) between device buffers.
fn run_osu(env: &GpuRankEnv, scale: usize) {
    let comm = &env.comm;
    let total = (8 << 10) * scale;
    let x = VectorXfer::paper(total);
    let dt = x.dtype();
    let dev = env.gpu.malloc(x.extent());
    let me = comm.rank();
    if me == 0 {
        fill_vector(&env.gpu, dev, &x, 29);
    }
    for it in 0..4u32 {
        if me == 0 {
            comm.send(dev, 1, &dt, 1, it);
            comm.recv(dev, 1, &dt, 1, 1000 + it);
        } else {
            comm.recv(dev, 1, &dt, 0, it);
            comm.send(dev, 1, &dt, 0, 1000 + it);
        }
    }
    // Four full round trips only move the pattern back and forth; both
    // sides must still hold rank 0's fill.
    verify_vector(&env.gpu, dev, &x, 29);
    env.gpu.free(dev);
}

/// Host-to-host bandwidth stream: rank 0 posts `2 * scale` back-to-back
/// 256 KiB contiguous isends to rank 1, which verifies every payload byte.
/// No GPU is touched, so the sends keep the sender's HCA transmit engine
/// continuously backlogged — the workload QoS weights actually divide.
fn run_stream(env: &GpuRankEnv, scale: usize) {
    let comm = &env.comm;
    let me = comm.rank();
    let elems = 64 << 10; // 256 KiB of f32 per message
    let msgs = 2 * scale;
    let f32t = Datatype::float();
    f32t.commit();
    let payload = |m: usize| -> Vec<f32> { (0..elems).map(|k| (m * 131 + k) as f32).collect() };
    if me == 0 {
        let bufs: Vec<HostBuf> = (0..msgs)
            .map(|m| HostBuf::from_vec(scalars_to_bytes(&payload(m))))
            .collect();
        let reqs: Vec<_> = bufs
            .iter()
            .enumerate()
            .map(|(m, b)| comm.isend(b.base(), elems, &f32t, 1, m as u32))
            .collect();
        comm.waitall(reqs);
    } else {
        let bufs: Vec<HostBuf> = (0..msgs).map(|_| HostBuf::alloc(elems * 4)).collect();
        let reqs: Vec<_> = bufs
            .iter()
            .enumerate()
            .map(|(m, b)| comm.irecv(b.base(), elems, &f32t, 0, m as u32))
            .collect();
        comm.waitall(reqs);
        for (m, b) in bufs.iter().enumerate() {
            let got = bytes_to_scalars::<f32>(&b.read(0, elems * 4));
            assert_eq!(
                got,
                payload(m),
                "stream message {m} corrupted under contention"
            );
        }
    }
    comm.barrier();
}
