//! Campaign-level guards for the shared-cluster runner: sole-tenant
//! bit-identity, QoS contention shift, carrier determinism under faults,
//! and an end-to-end mixed campaign.

use cluster_sim::{
    generate, run_mix, ClusterParams, JobKind, JobPlan, MixParams, Placement, SizedJob,
};
use ib_sim::{FaultSpec, JobQos};
use sim_core::ExecMode;
use sim_trace::Recorder;

fn off() -> Option<Recorder> {
    Some(Recorder::off())
}

fn shared_qos(weight: u32) -> JobQos {
    JobQos {
        hca_weight: weight,
        share_nodes: true,
        ..JobQos::default()
    }
}

/// Satellite guard: a single job at 100% share on a shared (multi-tenant)
/// fabric is bit-identical — virtual times *and* trace stream — to the
/// same job on a fabric whose sole tenant takes the dedicated fast path.
#[test]
fn single_job_at_full_share_is_bit_identical_to_dedicated() {
    let job = SizedJob {
        kind: JobKind::Gradient,
        scale: 2,
    };
    let run = |phantoms: usize| {
        let rec = Recorder::new();
        let params = ClusterParams {
            phys_nodes: job.ranks(),
            phantom_tenants: phantoms,
            recorder: Some(rec.clone()),
            ..ClusterParams::default()
        };
        let out = run_mix(
            &params,
            &[JobPlan {
                job,
                arrive_ns: 0,
                qos: JobQos::default(),
            }],
        );
        (
            out.jobs[0].clone(),
            out.makespan_ns,
            format!("{:?}", rec.events()),
        )
    };
    // 0 phantoms: the fabric's single-tenant path (the literal dedicated
    // arithmetic). 1 phantom: same job through the weighted-share
    // arbitration path at 100% share.
    let (job_a, end_a, trace_a) = run(0);
    let (job_b, end_b, trace_b) = run(1);
    assert_eq!(job_a, job_b, "per-job timings diverged");
    assert_eq!(end_a, end_b, "makespan diverged");
    assert_eq!(trace_a, trace_b, "trace streams diverged");
}

/// Cluster-level QoS guard: two identical host-bandwidth streams
/// contending for the same two HCAs finish in weight order — whichever
/// plan slot holds the weight-4 share, so the outcome is the weights, not
/// job-order asymmetry. (The GPU-staged kinds can't test this: the shared
/// PCIe copy engine paces their chunks below link rate, so the HCA never
/// sees two backlogged tenants.)
#[test]
fn weighted_tenant_outruns_light_tenant_on_shared_nodes() {
    let job = SizedJob {
        kind: JobKind::Stream,
        scale: 4,
    };
    let run = |w0: u32, w1: u32| {
        let plans = vec![
            JobPlan {
                job,
                arrive_ns: 0,
                qos: shared_qos(w0),
            },
            JobPlan {
                job,
                arrive_ns: 0,
                qos: shared_qos(w1),
            },
        ];
        let params = ClusterParams {
            phys_nodes: 2,
            placement: Placement::Shared,
            recorder: off(),
            ..ClusterParams::default()
        };
        let out = run_mix(&params, &plans);
        assert_eq!(
            out.jobs[0].nodes, out.jobs[1].nodes,
            "jobs must share the same nodes"
        );
        (out.jobs[0].service_ns(), out.jobs[1].service_ns())
    };
    let (heavy, light) = run(4, 1);
    assert!(
        heavy * 2 < light,
        "weight 4 in slot 0 took {heavy} ns, weight 1 took {light} ns"
    );
    let (light, heavy) = run(1, 4);
    assert!(
        heavy * 2 < light,
        "weight 4 in slot 1 took {heavy} ns, weight 1 took {light} ns"
    );
}

/// Satellite guard: a seeded 3-job fault-injection campaign is
/// deterministic across the fiber and OS-thread carriers.
#[test]
fn seeded_fault_campaign_is_carrier_deterministic() {
    let plans = vec![
        JobPlan {
            job: SizedJob {
                kind: JobKind::Osu,
                scale: 2,
            },
            arrive_ns: 0,
            qos: shared_qos(2),
        },
        JobPlan {
            job: SizedJob {
                kind: JobKind::Gradient,
                scale: 1,
            },
            arrive_ns: 50_000,
            qos: shared_qos(1),
        },
        JobPlan {
            job: SizedJob {
                kind: JobKind::Transpose,
                scale: 1,
            },
            arrive_ns: 100_000,
            qos: shared_qos(1),
        },
    ];
    let run = |mode: ExecMode| {
        let params = ClusterParams {
            phys_nodes: 4,
            placement: Placement::Shared,
            exec: Some(mode),
            faults: Some(FaultSpec {
                ctrl_drop: 0.05,
                ctrl_delay: 0.05,
                delay_ns: 20_000,
                ..FaultSpec::seeded(11)
            }),
            recorder: off(),
            ..ClusterParams::default()
        };
        run_mix(&params, &plans).jobs
    };
    let event = run(ExecMode::Event);
    let threads = run(ExecMode::Threads);
    assert_eq!(
        event, threads,
        "fault campaign diverged between Event and Threads carriers"
    );
}

/// End-to-end mixed campaign: a generated 8-job plan on an exclusive
/// 8-node cluster completes, with sane per-job timelines (arrive <= start
/// <= end) and every body's self-verification passing.
#[test]
fn generated_mix_completes_with_sane_timelines() {
    let plans = generate(&MixParams {
        seed: 1234,
        jobs: 8,
        mean_interarrival_us: 300.0,
    });
    let params = ClusterParams {
        phys_nodes: 8,
        recorder: off(),
        ..ClusterParams::default()
    };
    let out = run_mix(&params, &plans);
    assert_eq!(out.jobs.len(), 8);
    for j in &out.jobs {
        assert!(j.arrive_ns <= j.start_ns, "{j:?}");
        assert!(j.start_ns < j.end_ns, "{j:?}");
        assert_eq!(j.nodes.len(), j.ranks, "{j:?}");
        assert!(out.makespan_ns >= j.end_ns);
    }
}
