//! 3-D decomposition parameters and topology.

/// The three axes of the domain.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Axis {
    /// Slowest-varying dimension.
    I = 0,
    /// Middle dimension.
    J = 1,
    /// Fastest-varying (contiguous) dimension.
    K = 2,
}

impl Axis {
    /// All axes.
    pub const ALL: [Axis; 3] = [Axis::I, Axis::J, Axis::K];
}

/// Which side of an axis a face is on.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Side {
    /// Towards index 0.
    Low = 0,
    /// Towards the last index.
    High = 1,
}

impl Side {
    /// Both sides.
    pub const ALL: [Side; 2] = [Side::Low, Side::High];

    /// The opposite side.
    pub fn opposite(&self) -> Side {
        match self {
            Side::Low => Side::High,
            Side::High => Side::Low,
        }
    }
}

/// Which exchange implementation to run.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Variant {
    /// Host-staged blocking copies + host MPI.
    Def,
    /// Device buffers + subarray datatypes (MV2-GPU-NC).
    Mv2,
}

/// One configuration: a `grid` of ranks, each owning a `local` block,
/// iterated `iters` times.
#[derive(Copy, Clone, Debug)]
pub struct Halo3dParams {
    /// Ranks per axis.
    pub grid: (usize, usize, usize),
    /// Interior cells per rank per axis.
    pub local: (usize, usize, usize),
    /// Jacobi iterations.
    pub iters: usize,
}

impl Halo3dParams {
    /// Total ranks.
    pub fn nranks(&self) -> usize {
        self.grid.0 * self.grid.1 * self.grid.2
    }

    /// Rank -> grid coordinates (i-major, k fastest).
    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        let (gi, gj, gk) = self.grid;
        let _ = gi;
        let k = rank % gk;
        let j = (rank / gk) % gj;
        let i = rank / (gj * gk);
        (i, j, k)
    }

    /// Grid coordinates -> rank.
    pub fn rank_of(&self, c: (usize, usize, usize)) -> usize {
        (c.0 * self.grid.1 + c.1) * self.grid.2 + c.2
    }

    /// The neighboring rank across (axis, side), if any.
    pub fn neighbor(&self, rank: usize, axis: Axis, side: Side) -> Option<usize> {
        let mut c = self.coords(rank);
        let (axis_len, coord) = match axis {
            Axis::I => (self.grid.0, &mut c.0),
            Axis::J => (self.grid.1, &mut c.1),
            Axis::K => (self.grid.2, &mut c.2),
        };
        match side {
            Side::Low => {
                if *coord == 0 {
                    return None;
                }
                *coord -= 1;
            }
            Side::High => {
                if *coord + 1 >= axis_len {
                    return None;
                }
                *coord += 1;
            }
        }
        Some(self.rank_of(c))
    }
}

/// Deterministic initial value of global cell `(i, j, k)`.
pub fn initial_value(i: usize, j: usize, k: usize) -> f64 {
    (((i.wrapping_mul(73) ^ j.wrapping_mul(179) ^ k.wrapping_mul(283)) % 613) as f64) / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Halo3dParams {
        Halo3dParams {
            grid: (2, 3, 2),
            local: (4, 4, 4),
            iters: 1,
        }
    }

    #[test]
    fn coords_round_trip() {
        let p = p();
        for r in 0..p.nranks() {
            assert_eq!(p.rank_of(p.coords(r)), r);
        }
        assert_eq!(p.coords(0), (0, 0, 0));
        assert_eq!(p.coords(1), (0, 0, 1));
        assert_eq!(p.coords(2), (0, 1, 0));
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let p = p();
        assert_eq!(p.neighbor(0, Axis::I, Side::Low), None);
        assert_eq!(p.neighbor(0, Axis::I, Side::High), Some(6));
        assert_eq!(p.neighbor(0, Axis::K, Side::High), Some(1));
        assert_eq!(p.neighbor(1, Axis::K, Side::High), None);
        // Symmetric: my High neighbor's Low neighbor is me.
        for r in 0..p.nranks() {
            for a in Axis::ALL {
                if let Some(n) = p.neighbor(r, a, Side::High) {
                    assert_eq!(p.neighbor(n, a, Side::Low), Some(r));
                }
            }
        }
    }

    #[test]
    fn side_opposite() {
        assert_eq!(Side::Low.opposite(), Side::High);
        assert_eq!(Side::High.opposite(), Side::Low);
    }
}
