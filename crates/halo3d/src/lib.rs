//! # halo3d — 3-D Jacobi with six-face halo exchange
//!
//! The paper closes with "we also plan to evaluate the impact of our
//! approach with more applications". This crate is that evaluation: a 3-D
//! 7-point Jacobi solver whose halo exchange stresses the datatype engine
//! harder than Stencil2D —
//!
//! * **i-faces** are contiguous slabs (no packing needed),
//! * **j-faces** are long uniformly-strided rows (one strided device copy),
//! * **k-faces** are planes of single elements whose rows are *not*
//!   uniformly spaced across planes, so the original host-staged code needs
//!   a loop of `cudaMemcpy2D` calls per face while MV2-GPU-NC packs them
//!   with subarray datatypes.
//!
//! Both variants compute identical fields (verified against a serial
//! reference), and the k-face-heavy decompositions show the largest wins,
//! extending the paper's Table II pattern to three dimensions.

#![warn(missing_docs)]

mod params;
mod rank;

use std::sync::Arc;

use mv2_gpu_nc::{FaultSpec, GpuCluster, Recorder, Topology};
use sim_core::lock::Mutex;
use sim_core::{Report, SanitizerMode, SimDur};
use stencil2d::Real;

pub use params::{initial_value, Axis, Halo3dParams, Side, Variant};
pub use rank::{kernel_time, Halo3dRank, W_CENTER, W_FACE};

/// One rank's result.
#[derive(Clone, Debug)]
pub struct Rank3dReport {
    /// The rank.
    pub rank: usize,
    /// Barrier-to-barrier time.
    pub elapsed: SimDur,
    /// Interior checksum.
    pub checksum: f64,
    /// Interior bytes (when requested).
    pub interior: Option<Vec<u8>>,
}

/// Aggregated run result.
#[derive(Clone, Debug)]
pub struct Halo3dOutcome {
    /// Slowest rank's time.
    pub wall: SimDur,
    /// All ranks, ordered.
    pub ranks: Vec<Rank3dReport>,
}

impl Halo3dOutcome {
    /// Global checksum.
    pub fn checksum(&self) -> f64 {
        self.ranks.iter().map(|r| r.checksum).sum()
    }
}

/// Run one configuration; `collect` returns interiors for verification.
pub fn run_halo3d<T: Real>(p: Halo3dParams, variant: Variant, collect: bool) -> Halo3dOutcome {
    run_halo3d_reports::<T>(p, variant, collect, SanitizerMode::Off).0
}

/// Like [`run_halo3d`], but runs under the given sanitizer mode and returns
/// the reports it collected (empty when the sanitizer is off).
pub fn run_halo3d_reports<T: Real>(
    p: Halo3dParams,
    variant: Variant,
    collect: bool,
    sanitizer: SanitizerMode,
) -> (Halo3dOutcome, Vec<Report>) {
    run_halo3d_campaign::<T>(p, variant, collect, sanitizer, None)
}

/// Like [`run_halo3d_reports`], optionally on a fault-injecting fabric
/// (fault campaigns: the solver must produce byte-identical fields while
/// the MPI layer drops, delays and retries underneath it).
pub fn run_halo3d_campaign<T: Real>(
    p: Halo3dParams,
    variant: Variant,
    collect: bool,
    sanitizer: SanitizerMode,
    faults: Option<FaultSpec>,
) -> (Halo3dOutcome, Vec<Report>) {
    run_halo3d_traced::<T>(p, variant, collect, sanitizer, faults, None)
}

/// Like [`run_halo3d_campaign`], recording spans and counters into the
/// given [`Recorder`] (for `trace_report` and Perfetto export).
pub fn run_halo3d_traced<T: Real>(
    p: Halo3dParams,
    variant: Variant,
    collect: bool,
    sanitizer: SanitizerMode,
    faults: Option<FaultSpec>,
    recorder: Option<Recorder>,
) -> (Halo3dOutcome, Vec<Report>) {
    run_halo3d_topo::<T>(p, variant, collect, sanitizer, faults, recorder, 1)
}

/// Like [`run_halo3d_traced`], placing `ppn` consecutive ranks on each node
/// (blocked mapping). Because rank coordinates are i-major with k fastest,
/// blocked placement puts k-face neighbours — the pathological
/// single-element-row faces — on the same node, where they exchange halos
/// over shared memory (or stay on the GPU entirely) instead of the HCA.
#[allow(clippy::too_many_arguments)]
pub fn run_halo3d_topo<T: Real>(
    p: Halo3dParams,
    variant: Variant,
    collect: bool,
    sanitizer: SanitizerMode,
    faults: Option<FaultSpec>,
    recorder: Option<Recorder>,
    ppn: usize,
) -> (Halo3dOutcome, Vec<Report>) {
    let cluster = GpuCluster::new(p.nranks()).ppn(ppn);
    run_halo3d_on::<T>(cluster, p, variant, collect, sanitizer, faults, recorder)
}

/// Like [`run_halo3d_topo`], but with an arbitrary rank→node map (e.g. a
/// round-robin placement that sends every halo over the wire while still
/// sharing GPUs — the control for the blocked-placement benchmark).
#[allow(clippy::too_many_arguments)]
pub fn run_halo3d_mapped<T: Real>(
    p: Halo3dParams,
    variant: Variant,
    collect: bool,
    sanitizer: SanitizerMode,
    faults: Option<FaultSpec>,
    recorder: Option<Recorder>,
    topo: Topology,
) -> (Halo3dOutcome, Vec<Report>) {
    let cluster = GpuCluster::new(p.nranks()).topology(topo);
    run_halo3d_on::<T>(cluster, p, variant, collect, sanitizer, faults, recorder)
}

#[allow(clippy::too_many_arguments)]
fn run_halo3d_on<T: Real>(
    mut cluster: GpuCluster,
    p: Halo3dParams,
    variant: Variant,
    collect: bool,
    sanitizer: SanitizerMode,
    faults: Option<FaultSpec>,
    recorder: Option<Recorder>,
) -> (Halo3dOutcome, Vec<Report>) {
    let reports: Arc<Mutex<Vec<Rank3dReport>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&reports);
    cluster = cluster.sanitizer(sanitizer);
    if let Some(spec) = faults {
        cluster = cluster.faults(spec);
    }
    if let Some(rec) = recorder {
        cluster = cluster.recorder(rec);
    }
    let (_, san) = cluster.run_with_reports(move |env| {
        let mut rk = Halo3dRank::<T>::new(env, p);
        env.comm.barrier();
        let t0 = sim_core::now();
        for _ in 0..p.iters {
            rk.step(variant);
        }
        env.comm.barrier();
        let elapsed = sim_core::now() - t0;
        let interior = rk.interior();
        let checksum = interior.iter().map(|v| v.to_f64()).sum();
        sink.lock().push(Rank3dReport {
            rank: env.comm.rank(),
            elapsed,
            checksum,
            interior: collect.then(|| {
                interior
                    .iter()
                    .flat_map(|v| {
                        let mut b = vec![0u8; T::SIZE];
                        v.write_le(&mut b);
                        b
                    })
                    .collect()
            }),
        });
        rk.free();
    });
    let mut ranks = Arc::try_unwrap(reports)
        .map(|m| m.into_inner())
        .unwrap_or_else(|a| a.lock().clone());
    ranks.sort_by_key(|r| r.rank);
    let wall = ranks
        .iter()
        .map(|r| r.elapsed)
        .max()
        .unwrap_or(SimDur::ZERO);
    (Halo3dOutcome { wall, ranks }, san)
}

/// Serial CPU reference of the global computation (zero boundary).
pub fn reference_run<T: Real>(n: (usize, usize, usize), iters: usize) -> Vec<T> {
    let dims = (n.0 + 2, n.1 + 2, n.2 + 2);
    let at = |v: &[f64], i: usize, j: usize, k: usize| v[(i * dims.1 + j) * dims.2 + k];
    let mut cur = vec![0f64; dims.0 * dims.1 * dims.2];
    for i in 0..n.0 {
        for j in 0..n.1 {
            for k in 0..n.2 {
                cur[((i + 1) * dims.1 + (j + 1)) * dims.2 + (k + 1)] =
                    T::from_f64(initial_value(i, j, k)).to_f64();
            }
        }
    }
    let mut next = cur.clone();
    for _ in 0..iters {
        for i in 1..=n.0 {
            for j in 1..=n.1 {
                for k in 1..=n.2 {
                    let faces = at(&cur, i - 1, j, k)
                        + at(&cur, i + 1, j, k)
                        + at(&cur, i, j - 1, k)
                        + at(&cur, i, j + 1, k)
                        + at(&cur, i, j, k - 1)
                        + at(&cur, i, j, k + 1);
                    next[(i * dims.1 + j) * dims.2 + k] =
                        T::from_f64(W_CENTER * at(&cur, i, j, k) + W_FACE * faces).to_f64();
                }
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    let mut out = Vec::with_capacity(n.0 * n.1 * n.2);
    for i in 1..=n.0 {
        for j in 1..=n.1 {
            for k in 1..=n.2 {
                out.push(T::from_f64(at(&cur, i, j, k)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(grid: (usize, usize, usize), local: (usize, usize, usize), iters: usize) -> Halo3dParams {
        Halo3dParams { grid, local, iters }
    }

    fn against_reference<T: Real>(params: Halo3dParams, variant: Variant) {
        against_reference_ppn::<T>(params, variant, 1);
    }

    fn against_reference_ppn<T: Real>(params: Halo3dParams, variant: Variant, ppn: usize) {
        let out =
            run_halo3d_topo::<T>(params, variant, true, SanitizerMode::Off, None, None, ppn).0;
        let global = reference_run::<T>(
            (
                params.grid.0 * params.local.0,
                params.grid.1 * params.local.1,
                params.grid.2 * params.local.2,
            ),
            params.iters,
        );
        let (nj, nk) = (
            params.grid.1 * params.local.1,
            params.grid.2 * params.local.2,
        );
        for r in &out.ranks {
            let c = params.coords(r.rank);
            let vals: Vec<T> = r
                .interior
                .as_ref()
                .unwrap()
                .chunks_exact(T::SIZE)
                .map(T::read_le)
                .collect();
            let (li, lj, lk) = params.local;
            for i in 0..li {
                for j in 0..lj {
                    for k in 0..lk {
                        let g = (
                            (c.0 * li + i) * nj * nk + (c.1 * lj + j) * nk + (c.2 * lk + k),
                            vals[(i * lj + j) * lk + k],
                        );
                        assert_eq!(g.1, global[g.0], "rank {} cell ({i},{j},{k})", r.rank);
                    }
                }
            }
        }
    }

    #[test]
    fn mv2_matches_reference_2x1x2() {
        against_reference::<f64>(p((2, 1, 2), (6, 5, 4), 3), Variant::Mv2);
    }

    #[test]
    fn def_matches_reference_1x2x2() {
        against_reference::<f64>(p((1, 2, 2), (4, 6, 5), 3), Variant::Def);
    }

    #[test]
    fn mv2_matches_reference_f32_k_split() {
        // Splitting along k exercises the worst (single-element-row) faces.
        against_reference::<f32>(p((1, 1, 4), (5, 5, 8), 2), Variant::Mv2);
    }

    #[test]
    fn def_and_mv2_agree_bitwise_2x2x2() {
        let params = p((2, 2, 2), (5, 6, 4), 3);
        let d = run_halo3d::<f32>(params, Variant::Def, true);
        let m = run_halo3d::<f32>(params, Variant::Mv2, true);
        for (a, b) in d.ranks.iter().zip(&m.ranks) {
            assert_eq!(a.interior, b.interior, "rank {}", a.rank);
        }
    }

    #[test]
    fn mv2_wins_on_k_split_decomposition() {
        // k-faces are the pathological layout: MV2's device packing must
        // beat the per-plane cudaMemcpy2D loop of the Def variant.
        let params = p((1, 1, 2), (24, 48, 64), 2);
        let d = run_halo3d::<f32>(params, Variant::Def, false);
        let m = run_halo3d::<f32>(params, Variant::Mv2, false);
        assert!(
            m.wall < d.wall,
            "MV2 {} must beat Def {} on k-split",
            m.wall,
            d.wall
        );
    }

    #[test]
    fn sixteen_ranks_match_reference_at_every_ppn() {
        // 2x2x4 = 16 ranks; k is split four ways, so blocked ppn places the
        // worst-layout k-face neighbours on shared nodes. Every placement
        // must compute the exact same field as one rank per node.
        let params = p((2, 2, 4), (3, 3, 4), 2);
        for ppn in [1, 2, 4] {
            against_reference_ppn::<f64>(params, Variant::Mv2, ppn);
        }
        // The host-staged variant exercises the host shm path too.
        against_reference_ppn::<f64>(params, Variant::Def, 4);
    }

    #[test]
    fn ppn_placements_agree_bitwise_16_ranks() {
        let params = p((2, 2, 4), (3, 4, 5), 2);
        let base = run_halo3d::<f32>(params, Variant::Mv2, true);
        for ppn in [2, 4] {
            let out = run_halo3d_topo::<f32>(
                params,
                Variant::Mv2,
                true,
                SanitizerMode::Off,
                None,
                None,
                ppn,
            )
            .0;
            for (a, b) in base.ranks.iter().zip(&out.ranks) {
                assert_eq!(a.interior, b.interior, "ppn {ppn} rank {}", a.rank);
            }
        }
    }

    #[test]
    fn deterministic() {
        let params = p((2, 1, 1), (8, 8, 8), 2);
        let a = run_halo3d::<f64>(params, Variant::Mv2, false);
        let b = run_halo3d::<f64>(params, Variant::Mv2, false);
        assert_eq!(a.wall, b.wall);
        assert_eq!(a.checksum(), b.checksum());
    }
}
