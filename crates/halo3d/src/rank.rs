//! Per-rank state of the 3-D Jacobi benchmark: device blocks, face
//! datatypes and the two halo-exchange implementations.

use gpu_sim::{Copy2d, DevPtr, Loc, Stream};
use hostmem::HostBuf;
use mpi_sim::{Datatype, Request, SubarrayOrder};
use mv2_gpu_nc::GpuRankEnv;
use sim_core::SimDur;
use stencil2d::Real;

use crate::params::{Axis, Halo3dParams, Side, Variant};

/// Central weight of the 7-point operator.
pub const W_CENTER: f64 = 0.4;
/// Weight of each of the six face neighbors.
pub const W_FACE: f64 = 0.1;

/// Modeled GPU time of one 7-point Jacobi sweep (memory bound, ~8 element
/// accesses per cell).
pub fn kernel_time(cells: usize, elem: usize) -> SimDur {
    let ns = cells as f64 * 8.0 * elem as f64 / 140e9 * 1e9;
    SimDur::from_nanos(ns.round() as u64)
}

/// One rank of the 3-D benchmark.
pub struct Halo3dRank<'a, T: Real> {
    env: &'a GpuRankEnv,
    p: Halo3dParams,
    cur: DevPtr,
    next: DevPtr,
    /// Local dimensions including the halo ring.
    dims: (usize, usize, usize),
    stream: Stream,
    /// Send/recv subarray types per (axis, side).
    send_dt: Vec<Datatype>,
    recv_dt: Vec<Datatype>,
    /// Host staging for the Def variant, one per (axis, side, way).
    stage: Vec<HostBuf>,
    _t: std::marker::PhantomData<T>,
}

fn idx(dims: (usize, usize, usize), i: usize, j: usize, k: usize) -> usize {
    (i * dims.1 + j) * dims.2 + k
}

impl<'a, T: Real> Halo3dRank<'a, T> {
    /// Allocate and initialize from the deterministic global pattern.
    pub fn new(env: &'a GpuRankEnv, p: Halo3dParams) -> Self {
        let (ni, nj, nk) = p.local;
        let dims = (ni + 2, nj + 2, nk + 2);
        let cells = dims.0 * dims.1 * dims.2;
        let cur = env.gpu.malloc(cells * T::SIZE);
        let next = env.gpu.malloc(cells * T::SIZE);
        let me = p.coords(env.comm.rank());
        let mut init = vec![0u8; cells * T::SIZE];
        for i in 1..=ni {
            for j in 1..=nj {
                for k in 1..=nk {
                    let g = (
                        me.0 * ni + (i - 1),
                        me.1 * nj + (j - 1),
                        me.2 * nk + (k - 1),
                    );
                    let v = T::from_f64(crate::params::initial_value(g.0, g.1, g.2));
                    let o = idx(dims, i, j, k) * T::SIZE;
                    v.write_le(&mut init[o..o + T::SIZE]);
                }
            }
        }
        env.gpu.write_bytes(cur, &init);
        env.gpu.write_bytes(next, &init);
        let elem = if T::SIZE == 4 {
            Datatype::float()
        } else {
            Datatype::double()
        };
        // One subarray per (axis, side, send/recv): the send window is the
        // boundary *interior* plane, the recv window the adjacent halo
        // plane.
        let sizes = [dims.0, dims.1, dims.2];
        let mut send_dt = Vec::new();
        let mut recv_dt = Vec::new();
        for axis in Axis::ALL {
            for side in Side::ALL {
                let a = axis as usize;
                let mut subsizes = [ni, nj, nk];
                subsizes[a] = 1;
                let interior = [sizes[0] - 2, sizes[1] - 2, sizes[2] - 2];
                let _ = interior;
                let mut starts = [1usize, 1, 1];
                starts[a] = match side {
                    Side::Low => 1,
                    Side::High => sizes[a] - 2,
                };
                let s = Datatype::subarray(&sizes, &subsizes, &starts, SubarrayOrder::C, &elem);
                s.commit();
                send_dt.push(s);
                starts[a] = match side {
                    Side::Low => 0,
                    Side::High => sizes[a] - 1,
                };
                let r = Datatype::subarray(&sizes, &subsizes, &starts, SubarrayOrder::C, &elem);
                r.commit();
                recv_dt.push(r);
            }
        }
        let face_bytes = |axis: Axis| -> usize {
            let a = axis as usize;
            let mut s = [ni, nj, nk];
            s[a] = 1;
            s[0] * s[1] * s[2] * T::SIZE
        };
        let mut stage = Vec::new();
        for axis in Axis::ALL {
            for _side in Side::ALL {
                stage.push(HostBuf::alloc(face_bytes(axis))); // out
                stage.push(HostBuf::alloc(face_bytes(axis))); // in
            }
        }
        Halo3dRank {
            env,
            p,
            cur,
            next,
            dims,
            stream: env.gpu.create_stream(),
            send_dt,
            recv_dt,
            stage,
            _t: std::marker::PhantomData,
        }
    }

    fn dt_index(axis: Axis, side: Side) -> usize {
        axis as usize * 2 + side as usize
    }

    /// MV2-GPU-NC exchange: device buffers + subarray datatypes, one
    /// nonblocking pair per face.
    pub fn exchange_mv2(&mut self) {
        let comm = &self.env.comm;
        let me = comm.rank();
        let mut reqs: Vec<Request> = Vec::new();
        for axis in Axis::ALL {
            for side in Side::ALL {
                if let Some(peer) = self.p.neighbor(me, axis, side) {
                    let di = Self::dt_index(axis, side);
                    let tag = di as u32;
                    // Matching: my Low face pairs with the peer's High face.
                    let peer_tag = Self::dt_index(axis, side.opposite()) as u32;
                    reqs.push(comm.irecv(self.cur, 1, &self.recv_dt[di], peer, peer_tag));
                    reqs.push(comm.isend(self.cur, 1, &self.send_dt[di], peer, tag));
                }
            }
        }
        comm.waitall(reqs);
    }

    /// Original-style exchange: stage each face through host memory with
    /// blocking `cudaMemcpy2D` loops, then host MPI.
    pub fn exchange_def(&mut self) {
        let comm = self.env.comm.clone();
        let gpu = self.env.gpu.clone();
        let me = comm.rank();
        let byte = Datatype::byte();
        byte.commit();
        let mut reqs: Vec<Request> = Vec::new();
        // Post all receives into host staging.
        for axis in Axis::ALL {
            for side in Side::ALL {
                if let Some(peer) = self.p.neighbor(me, axis, side) {
                    let di = Self::dt_index(axis, side);
                    let peer_tag = Self::dt_index(axis, side.opposite()) as u32;
                    let n = self.stage[di * 2 + 1].len();
                    reqs.push(comm.irecv(self.stage[di * 2 + 1].base(), n, &byte, peer, peer_tag));
                }
            }
        }
        // Stage out and send.
        for axis in Axis::ALL {
            for side in Side::ALL {
                if let Some(peer) = self.p.neighbor(me, axis, side) {
                    let di = Self::dt_index(axis, side);
                    self.stage_face(&gpu, axis, side, di, true);
                    let n = self.stage[di * 2].len();
                    comm.send(self.stage[di * 2].base(), n, &byte, peer, di as u32);
                }
            }
        }
        comm.waitall(reqs);
        // Unstage received halos.
        for axis in Axis::ALL {
            for side in Side::ALL {
                if self.p.neighbor(me, axis, side).is_some() {
                    let di = Self::dt_index(axis, side);
                    self.stage_face(&gpu, axis, side, di, false);
                }
            }
        }
    }

    /// Copy one face between device and its host staging buffer with
    /// blocking CUDA calls (`out = true`: boundary plane to host; `out =
    /// false`: host to halo plane).
    fn stage_face(&mut self, gpu: &gpu_sim::Gpu, axis: Axis, side: Side, di: usize, out: bool) {
        let (ni, nj, nk) = self.p.local;
        let dims = self.dims;
        let es = T::SIZE;
        let plane = |a: Axis, s: Side, halo: bool| -> usize {
            let len = match a {
                Axis::I => dims.0,
                Axis::J => dims.1,
                Axis::K => dims.2,
            };
            match (s, halo) {
                (Side::Low, true) => 0,
                (Side::Low, false) => 1,
                (Side::High, true) => len - 1,
                (Side::High, false) => len - 2,
            }
        };
        let fixed = plane(axis, side, !out);
        let host = &self.stage[di * 2 + usize::from(!out)];
        match axis {
            // i-face: nj rows of nk contiguous elements.
            Axis::I => {
                let base = idx(dims, fixed, 1, 1) * es;
                let c = Copy2d {
                    dst: if out {
                        Loc::Host(host.base())
                    } else {
                        Loc::Device(self.cur.add(base))
                    },
                    dpitch: if out { nk * es } else { dims.2 * es },
                    src: if out {
                        Loc::Device(self.cur.add(base))
                    } else {
                        Loc::Host(host.base())
                    },
                    spitch: if out { dims.2 * es } else { nk * es },
                    width: nk * es,
                    height: nj,
                };
                gpu.memcpy_2d(c);
            }
            // j-face: ni rows of nk contiguous elements, plane pitch apart.
            Axis::J => {
                let base = idx(dims, 1, fixed, 1) * es;
                let pitch = dims.1 * dims.2 * es;
                let c = Copy2d {
                    dst: if out {
                        Loc::Host(host.base())
                    } else {
                        Loc::Device(self.cur.add(base))
                    },
                    dpitch: if out { nk * es } else { pitch },
                    src: if out {
                        Loc::Device(self.cur.add(base))
                    } else {
                        Loc::Host(host.base())
                    },
                    spitch: if out { dims.2 * es } else { nk * es },
                    width: nk * es,
                    height: ni,
                };
                // Source pitch differs per direction; fix up for `out`.
                let c = if out {
                    Copy2d { spitch: pitch, ..c }
                } else {
                    Copy2d { dpitch: pitch, ..c }
                };
                gpu.memcpy_2d(c);
            }
            // k-face: single elements at pitch (nk+2) within a plane, but
            // planes are not uniformly spaced relative to the rows — the
            // original application needs one 2-D copy per i-plane.
            Axis::K => {
                for i in 1..=ni {
                    let base = idx(dims, i, 1, fixed) * es;
                    let hoff = (i - 1) * nj * es;
                    let c = Copy2d {
                        dst: if out {
                            Loc::Host(host.ptr(hoff))
                        } else {
                            Loc::Device(self.cur.add(base))
                        },
                        dpitch: if out { es } else { dims.2 * es },
                        src: if out {
                            Loc::Device(self.cur.add(base))
                        } else {
                            Loc::Host(host.ptr(hoff))
                        },
                        spitch: if out { dims.2 * es } else { es },
                        width: es,
                        height: nj,
                    };
                    gpu.memcpy_2d(c);
                }
            }
        }
    }

    /// One iteration: exchange, 7-point sweep, swap.
    pub fn step(&mut self, variant: Variant) {
        match variant {
            Variant::Def => self.exchange_def(),
            Variant::Mv2 => self.exchange_mv2(),
        }
        let (ni, nj, nk) = self.p.local;
        let dims = self.dims;
        let (cur, next) = (self.cur, self.next);
        let cells = dims.0 * dims.1 * dims.2;
        let cost = kernel_time(ni * nj * nk, T::SIZE);
        self.env
            .gpu
            .launch_kernel("jacobi7", cost, &self.stream, move |g| {
                let src = g.read_bytes(cur, cells * T::SIZE);
                let mut dst = src.clone();
                let vals: Vec<f64> = src
                    .chunks_exact(T::SIZE)
                    .map(|c| T::read_le(c).to_f64())
                    .collect();
                let at = |i: usize, j: usize, k: usize| vals[idx(dims, i, j, k)];
                for i in 1..=ni {
                    for j in 1..=nj {
                        for k in 1..=nk {
                            let faces = at(i - 1, j, k)
                                + at(i + 1, j, k)
                                + at(i, j - 1, k)
                                + at(i, j + 1, k)
                                + at(i, j, k - 1)
                                + at(i, j, k + 1);
                            let v = W_CENTER * at(i, j, k) + W_FACE * faces;
                            let o = idx(dims, i, j, k) * T::SIZE;
                            T::from_f64(v).write_le(&mut dst[o..o + T::SIZE]);
                        }
                    }
                }
                g.write_bytes(next, &dst);
            })
            .wait();
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// Interior values, row-major `(ni, nj, nk)`, in storage precision.
    pub fn interior(&self) -> Vec<T> {
        let (ni, nj, nk) = self.p.local;
        let dims = self.dims;
        let all = self
            .env
            .gpu
            .read_bytes(self.cur, dims.0 * dims.1 * dims.2 * T::SIZE);
        let mut out = Vec::with_capacity(ni * nj * nk);
        for i in 1..=ni {
            for j in 1..=nj {
                for k in 1..=nk {
                    let o = idx(dims, i, j, k) * T::SIZE;
                    out.push(T::read_le(&all[o..o + T::SIZE]));
                }
            }
        }
        out
    }

    /// Free device buffers.
    pub fn free(self) {
        self.env.gpu.free(self.cur);
        self.env.gpu.free(self.next);
    }
}
