//! # gpu-nc-repro — umbrella crate
//!
//! Re-exports the whole reproduction stack of *"Optimized Non-contiguous MPI
//! Datatype Communication for GPU Clusters"* (CLUSTER 2011) so examples and
//! integration tests can use one dependency. See the individual crates for
//! documentation:
//!
//! * [`sim_core`] — deterministic virtual-time simulation kernel
//! * [`sim_trace`] — virtual-time tracing & metrics (lanes, Chrome export,
//!   pipeline analyses)
//! * [`gpu_sim`] — CUDA-like GPU device simulator
//! * [`ib_sim`] — InfiniBand verbs / RDMA simulator
//! * [`mpi_sim`] — MPI runtime with a full derived-datatype engine
//! * [`mv2_gpu_nc`] — the paper's contribution: GPU-aware non-contiguous
//!   datatype communication (offloaded packing + 5-stage pipeline)
//! * [`stencil2d`] — SHOC Stencil2D application benchmark
//! * [`coll_apps`] — collective-driven workloads (distributed transpose,
//!   gradient allreduce) over the hierarchical datatype-aware collectives
//! * [`simcheck`] — exhaustive control-plane model checking
//! * [`cluster_sim`] — multi-job shared-cluster campaigns: open-loop job
//!   arrivals, node scheduling and per-job HCA QoS over one fabric

pub use cluster_sim;
pub use coll_apps;
pub use gpu_sim;
pub use halo3d;
pub use hostmem;
pub use ib_sim;
pub use mpi_sim;
pub use mv2_gpu_nc;
pub use osu_micro;
pub use sim_core;
pub use sim_trace;
pub use simcheck;
pub use stencil2d;
