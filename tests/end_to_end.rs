//! Cross-crate integration tests: the full stack (sim kernel → GPU + NIC
//! simulators → MPI runtime → MV2-GPU-NC → application) exercised end to
//! end.

use gpu_nc_repro::mpi_sim::{Datatype, MpiConfig};
use gpu_nc_repro::mv2_gpu_nc::baselines::{fill_vector, verify_vector, VectorXfer};
use gpu_nc_repro::mv2_gpu_nc::GpuCluster;
use gpu_nc_repro::stencil2d::{run_stencil, RunOptions, StencilParams, Variant};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn eight_rank_ring_of_device_vectors() {
    // Every rank passes a strided device message around a ring; after n
    // hops each rank holds its left neighbor's pattern.
    GpuCluster::new(8).run(|env| {
        let x = VectorXfer::paper(96 << 10);
        let me = env.comm.rank();
        let n = env.comm.size();
        let dev = env.gpu.malloc(x.extent());
        fill_vector(&env.gpu, dev, &x, me as u8);
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        if me % 2 == 0 {
            env.comm.send(dev, 1, &x.dtype(), next, 7);
            env.comm.recv(dev, 1, &x.dtype(), prev, 7);
        } else {
            let incoming = env.gpu.malloc(x.extent());
            env.comm.recv(incoming, 1, &x.dtype(), prev, 7);
            env.comm.send(dev, 1, &x.dtype(), next, 7);
            env.gpu.memcpy(dev, incoming, x.extent());
            env.gpu.free(incoming);
        }
        verify_vector(&env.gpu, dev, &x, prev as u8);
    });
}

#[test]
fn stencil_all_grids_def_equals_mv2() {
    for (py, px) in [(1, 4), (4, 1), (2, 2)] {
        let p = StencilParams {
            py,
            px,
            rows: 24,
            cols: 20,
            iters: 3,
        };
        let opts = RunOptions {
            timed_breakdown: false,
            collect_interiors: true,
        };
        let d = run_stencil::<f32>(p, Variant::Def, opts);
        let m = run_stencil::<f32>(p, Variant::Mv2, opts);
        for (a, b) in d.ranks.iter().zip(&m.ranks) {
            assert_eq!(a.interior, b.interior, "grid {py}x{px} rank {}", a.rank);
        }
    }
}

#[test]
fn different_decompositions_agree_on_the_global_field() {
    // 1x4 and 4x1 decompositions of the same 48x48 global field must give
    // the same answer (exact in f64, since the arithmetic order inside one
    // cell's update is fixed).
    let a = run_stencil::<f64>(
        StencilParams {
            py: 1,
            px: 4,
            rows: 48,
            cols: 12,
            iters: 4,
        },
        Variant::Mv2,
        RunOptions {
            timed_breakdown: false,
            collect_interiors: true,
        },
    );
    let b = run_stencil::<f64>(
        StencilParams {
            py: 4,
            px: 1,
            rows: 12,
            cols: 48,
            iters: 4,
        },
        Variant::Mv2,
        RunOptions {
            timed_breakdown: false,
            collect_interiors: true,
        },
    );
    // Reassemble both into global fields and compare.
    let assemble = |out: &gpu_nc_repro::stencil2d::StencilOutcome,
                    py: usize,
                    px: usize,
                    rows: usize,
                    cols: usize| {
        let (gr, gc) = (py * rows, px * cols);
        let mut g = vec![0f64; gr * gc];
        for r in &out.ranks {
            let (pr, pc) = (r.rank / px, r.rank % px);
            let vals: Vec<f64> = r
                .interior
                .as_ref()
                .unwrap()
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            for lr in 0..rows {
                for lc in 0..cols {
                    g[(pr * rows + lr) * gc + (pc * cols + lc)] = vals[lr * cols + lc];
                }
            }
        }
        g
    };
    let ga = assemble(&a, 1, 4, 48, 12);
    let gb = assemble(&b, 4, 1, 12, 48);
    assert_eq!(ga, gb, "decomposition must not change the physics");
}

#[test]
fn block_size_is_a_working_tunable() {
    // The MV2_CUDA_BLOCK_SIZE analog: extreme block sizes still produce
    // correct data, just different timing.
    let mut times = Vec::new();
    for block in [8 << 10, 64 << 10, 1 << 20] {
        let out = Arc::new(AtomicU64::new(0));
        let out2 = Arc::clone(&out);
        GpuCluster::new(2).block_size(block).run(move |env| {
            let x = VectorXfer::paper(2 << 20);
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 3);
                env.comm.send(dev, 1, &x.dtype(), 1, 0);
            } else {
                let t0 = sim_core::now();
                env.comm.recv(dev, 1, &x.dtype(), 0, 0);
                verify_vector(&env.gpu, dev, &x, 3);
                out2.store((sim_core::now() - t0).as_nanos(), Ordering::SeqCst);
            }
        });
        times.push(out.load(Ordering::SeqCst));
    }
    // 64 KB (the tuned default) must beat both extremes.
    assert!(times[1] < times[0], "64K must beat 8K: {times:?}");
    assert!(times[1] < times[2], "64K must beat 1M: {times:?}");
}

#[test]
fn mixed_traffic_host_and_device_interleaved() {
    // Host messages and device messages with overlapping tags flow at the
    // same time without corrupting each other.
    GpuCluster::new(2).run(|env| {
        let me = env.comm.rank();
        let peer = 1 - me;
        let byte = Datatype::byte();
        byte.commit();
        let x = VectorXfer::paper(128 << 10);
        let dev = env.gpu.malloc(x.extent());
        let host = hostmem::HostBuf::from_vec(vec![me as u8 + 10; 200 << 10]);
        let hin = hostmem::HostBuf::alloc(200 << 10);
        fill_vector(&env.gpu, dev, &x, me as u8);
        let dev_in = env.gpu.malloc(x.extent());

        let r1 = env.comm.irecv(hin.base(), 200 << 10, &byte, peer, 1u32);
        let r2 = env.comm.irecv(dev_in, 1, &x.dtype(), peer, 2u32);
        let s1 = env.comm.isend(host.base(), 200 << 10, &byte, peer, 1);
        let s2 = env.comm.isend(dev, 1, &x.dtype(), peer, 2);
        env.comm.waitall(vec![r1, r2, s1, s2]);

        assert_eq!(hin.read(0, 200 << 10), vec![peer as u8 + 10; 200 << 10]);
        verify_vector(&env.gpu, dev_in, &x, peer as u8);
    });
}

#[test]
fn tiny_vbuf_pool_still_completes() {
    // Failure injection: a pool with barely more vbufs than one transfer's
    // window forces constant recycling; the protocol must not deadlock.
    let cfg = MpiConfig {
        pool_vbufs: 6,
        window_slots: 2,
        ..MpiConfig::default()
    };
    GpuCluster::new(2).mpi_config(cfg).run(|env| {
        let x = VectorXfer::paper(1 << 20); // 16 chunks through 2-slot window
        let dev = env.gpu.malloc(x.extent());
        if env.comm.rank() == 0 {
            fill_vector(&env.gpu, dev, &x, 9);
            env.comm.send(dev, 1, &x.dtype(), 1, 0);
        } else {
            env.comm.recv(dev, 1, &x.dtype(), 0, 0);
            verify_vector(&env.gpu, dev, &x, 9);
        }
    });
}

#[test]
fn many_concurrent_staged_transfers_share_the_pool() {
    // Several simultaneous rendezvous transfers compete for vbufs.
    GpuCluster::new(4).run(|env| {
        let me = env.comm.rank();
        let x = VectorXfer::paper(256 << 10);
        let mut reqs = Vec::new();
        let mut bufs = Vec::new();
        for peer in 0..4usize {
            if peer == me {
                continue;
            }
            let dev_in = env.gpu.malloc(x.extent());
            reqs.push(env.comm.irecv(dev_in, 1, &x.dtype(), peer, me as u32));
            bufs.push((peer, dev_in));
            let dev_out = env.gpu.malloc(x.extent());
            fill_vector(&env.gpu, dev_out, &x, me as u8);
            reqs.push(env.comm.isend(dev_out, 1, &x.dtype(), peer, peer as u32));
        }
        env.comm.waitall(reqs);
        for (peer, dev_in) in bufs {
            verify_vector(&env.gpu, dev_in, &x, peer as u8);
        }
    });
}

#[test]
fn cts_deferral_under_pool_exhaustion() {
    // Post far more concurrent staged receives than the vbuf pool can
    // serve at once: CTS grants must be deferred and the whole burst must
    // still complete correctly (regression for the OSU bw window case).
    let cfg = MpiConfig {
        pool_vbufs: 8,
        window_slots: 4,
        ..MpiConfig::default()
    };
    GpuCluster::new(2).mpi_config(cfg).run(|env| {
        let x = VectorXfer::paper(128 << 10); // 2 chunks each
        let me = env.comm.rank();
        let peer = 1 - me;
        let n = 24; // needs up to 48 slots if granted eagerly; pool has 8
        let mut reqs = Vec::new();
        let mut bufs = Vec::new();
        for i in 0..n {
            let dev_in = env.gpu.malloc(x.extent());
            reqs.push(env.comm.irecv(dev_in, 1, &x.dtype(), peer, i as u32));
            bufs.push(dev_in);
            let dev_out = env.gpu.malloc(x.extent());
            fill_vector(&env.gpu, dev_out, &x, i as u8);
            reqs.push(env.comm.isend(dev_out, 1, &x.dtype(), peer, i as u32));
        }
        env.comm.waitall(reqs);
        for (i, dev_in) in bufs.into_iter().enumerate() {
            verify_vector(&env.gpu, dev_in, &x, i as u8);
        }
    });
}

#[test]
fn whole_simulation_is_deterministic_end_to_end() {
    let run = || {
        run_stencil::<f32>(
            StencilParams {
                py: 2,
                px: 2,
                rows: 64,
                cols: 64,
                iters: 3,
            },
            Variant::Mv2,
            RunOptions::default(),
        )
        .wall
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}
