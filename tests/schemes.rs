//! Scheme-layer contract tests: the NIC offload data path must be
//! invisible to the application. Every layout the HCA's descriptor walker
//! can express delivers byte-identical payloads whether the bytes move
//! through the staged pipeline, the direct R-PUT, or the scatter/gather
//! offload engine; layouts it cannot express fall back to the staged
//! pipeline without perturbing a single event; and forcing offload onto
//! such a layout surfaces a typed rejection instead of a deep-engine panic.

use std::sync::Arc;

use gpu_nc_repro::ib_sim::FaultSpec;
use gpu_nc_repro::mpi_sim::{
    ConfigError, DataScheme, Datatype, MpiConfig, MpiError, MpiWorld, SchemeSel,
};
use gpu_nc_repro::simcheck::{explore, scenarios, silence_expected_panics, Schedule};
use hostmem::HostBuf;
use sim_core::lock::Mutex;
use sim_core::{instrument, SimTime};

/// The layout zoo: one datatype per [`Canonical`](gpu_nc_repro::mpi_sim::Canonical)
/// form, every payload rendezvous-sized and (for the regular shapes) above
/// the `offload_min_bytes` threshold so the Auto policy is willing to
/// offload.
#[derive(Copy, Clone, Debug)]
enum Zoo {
    /// 256 KiB of plain bytes — one descriptor entry.
    Contig,
    /// 4096 rows of 64 B every 128 B (`MPI_Type_vector`) — one entry.
    Strided1d,
    /// 64 planes of 32 rows of 64 B (hvector of vector) — 64 entries.
    Strided2d,
    /// Alternating 96/160 B blocks — no bounded descriptor exists.
    Irregular,
}

/// Build the zoo datatype: `(type, count, buffer bytes, payload bytes)`.
fn zoo_type(z: Zoo) -> (Datatype, usize, usize, usize) {
    match z {
        Zoo::Contig => (Datatype::byte(), 256 << 10, 256 << 10, 256 << 10),
        Zoo::Strided1d => (
            Datatype::vector(4096, 16, 32, &Datatype::float()),
            1,
            524288,
            256 << 10,
        ),
        Zoo::Strided2d => {
            let row = Datatype::vector(32, 16, 32, &Datatype::float());
            (Datatype::hvector(64, 1, 8192, &row), 1, 520192, 128 << 10)
        }
        Zoo::Irregular => {
            let blocks: Vec<(usize, isize)> = (0..1024)
                .map(|i| (if i % 2 == 0 { 96 } else { 160 }, i * 512))
                .collect();
            (
                Datatype::hindexed(&blocks, &Datatype::byte()),
                1,
                524288,
                128 << 10,
            )
        }
    }
}

/// One rank-0 → rank-1 transfer of the zoo layout under the given scheme
/// policy: returns the job's virtual end time and the receiver's *entire*
/// buffer (holes included — hole corruption must show up too).
fn exchange(z: Zoo, scheme: SchemeSel, faults: Option<FaultSpec>) -> (SimTime, Vec<u8>) {
    let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&out);
    let cfg = MpiConfig {
        scheme,
        ..MpiConfig::default()
    };
    let mut world = MpiWorld::new(2).with_config(cfg);
    if let Some(spec) = faults {
        world = world.with_faults(spec);
    }
    let end = world.run(move |comm| {
        let (t, count, bufsize, payload) = zoo_type(z);
        t.commit();
        if comm.rank() == 0 {
            let buf = HostBuf::from_vec((0..bufsize).map(|i| (i % 251) as u8).collect());
            comm.send(buf.base(), count, &t, 1, 0);
        } else {
            let buf = HostBuf::alloc(bufsize);
            let st = comm.recv(buf.base(), count, &t, 0, 0);
            assert_eq!(st.bytes, payload, "{z:?}: wrong payload size");
            *sink.lock() = buf.read(0, bufsize);
        }
    });
    let bytes = std::mem::take(&mut *out.lock());
    assert!(!bytes.is_empty(), "{z:?}: receiver never recorded");
    (end, bytes)
}

#[test]
fn offload_is_byte_identical_to_staged_and_auto() {
    for z in [Zoo::Contig, Zoo::Strided1d, Zoo::Strided2d] {
        let (t_staged, staged) = exchange(z, SchemeSel::Force(DataScheme::Staged), None);
        let (t_offload, offload) = exchange(z, SchemeSel::Force(DataScheme::NicOffload), None);
        let (_, auto) = exchange(z, SchemeSel::Auto { offload: true }, None);
        assert_eq!(staged, offload, "{z:?}: offload corrupted the payload");
        assert_eq!(staged, auto, "{z:?}: auto policy corrupted the payload");
        // The offload engine is a genuinely different data path — one
        // descriptor walk instead of a chunked vbuf pipeline — so its
        // virtual timing cannot coincide with the staged schedule.
        assert_ne!(
            t_staged, t_offload,
            "{z:?}: forced offload replayed the staged schedule — scheme not engaged"
        );
    }
}

#[test]
fn irregular_layout_falls_back_to_staged_bit_identically() {
    // No bounded descriptor exists for the irregular zoo type: the Auto
    // policy with offload enabled must degrade to the staged pipeline
    // without moving a single event — same bytes, same virtual end time as
    // both the offload-disabled default and an explicit Force(Staged).
    let (t_off, off) = exchange(Zoo::Irregular, SchemeSel::Auto { offload: true }, None);
    let (t_def, def) = exchange(Zoo::Irregular, SchemeSel::Auto { offload: false }, None);
    let (t_forced, forced) = exchange(Zoo::Irregular, SchemeSel::Force(DataScheme::Staged), None);
    assert_eq!(off, def, "fallback changed the delivered bytes");
    assert_eq!(off, forced, "forced staged changed the delivered bytes");
    assert_eq!(
        t_off, t_def,
        "enabling offload perturbed the virtual time of an irregular transfer"
    );
    assert_eq!(
        t_def, t_forced,
        "Force(Staged) perturbed the virtual time of an irregular transfer"
    );
}

#[test]
fn forced_offload_on_irregular_is_rejected_with_a_typed_error() {
    // Force(NicOffload) forbids the staged fallback, and the HCA cannot
    // walk a deep struct layout: the send must fail through wait_result
    // with the typed rejection before any wire traffic — not hang, not
    // panic deep in the engine.
    let cfg = MpiConfig {
        scheme: SchemeSel::Force(DataScheme::NicOffload),
        ..MpiConfig::default()
    };
    let saw: Arc<Mutex<Option<MpiError>>> = Arc::new(Mutex::new(None));
    let sink = Arc::clone(&saw);
    MpiWorld::new(2).with_config(cfg).run(move |comm| {
        if comm.rank() == 0 {
            let (t, count, bufsize, _) = zoo_type(Zoo::Irregular);
            t.commit();
            let buf = HostBuf::alloc(bufsize);
            let req = comm.isend(buf.base(), count, &t, 1, 0);
            let err = comm
                .wait_result(req)
                .expect_err("forced offload on an irregular layout must be rejected");
            *sink.lock() = Some(err);
        }
        // Rank 1 never posts a receive: the rejection happens sender-side.
    });
    let err = saw.lock().clone().expect("rank 0 never reported");
    assert_eq!(
        err,
        MpiError::Rejected {
            err: ConfigError::ForcedOffloadIrregular
        },
        "wrong rejection surfaced"
    );
}

#[test]
fn desc_fetch_faults_retry_and_deliver_intact() {
    // Seeded descriptor-fetch fault campaign: every offload post may fail
    // its descriptor fetch (error CQE after the walk); the sender must
    // re-post the scatter/gather write and the delivered bytes must be
    // identical to a fault-free run — only the retry counters differ.
    let campaign = |faults: Option<FaultSpec>| -> Vec<Vec<u8>> {
        let out: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&out);
        let cfg = MpiConfig {
            scheme: SchemeSel::Force(DataScheme::NicOffload),
            ..MpiConfig::default()
        };
        let mut world = MpiWorld::new(2).with_config(cfg);
        if let Some(spec) = faults {
            world = world.with_faults(spec);
        }
        world.run(move |comm| {
            let (t, count, bufsize, _) = zoo_type(Zoo::Strided2d);
            t.commit();
            for tag in 0..8u32 {
                if comm.rank() == 0 {
                    let fill = tag as usize;
                    let buf =
                        HostBuf::from_vec((0..bufsize).map(|i| ((i + fill) % 251) as u8).collect());
                    comm.send(buf.base(), count, &t, 1, tag);
                } else {
                    let buf = HostBuf::alloc(bufsize);
                    comm.recv(buf.base(), count, &t, 0, tag);
                    sink.lock().push(buf.read(0, bufsize));
                }
            }
        });
        let got = std::mem::take(&mut *out.lock());
        got
    };
    let clean = campaign(None);
    let before = instrument::global().snapshot();
    let faulty = campaign(Some(FaultSpec {
        desc_fetch_error: 0.4,
        ..FaultSpec::seeded(11)
    }));
    assert_eq!(clean.len(), 8);
    for (i, (c, f)) in clean.iter().zip(&faulty).enumerate() {
        assert_eq!(c, f, "message {i}: faults corrupted the payload");
    }
    let delta = instrument::global().delta(&before);
    assert!(
        delta.get("fault.desc_fetch").copied().unwrap_or(0) > 0,
        "40% descriptor-fetch errors over 8 offload posts never fired: {delta:?}"
    );
    assert!(
        delta.get("retry.offload_sg").copied().unwrap_or(0) > 0,
        "a failed descriptor fetch must surface as an offload re-post: {delta:?}"
    );
}

#[test]
fn offload_rendezvous_passes_exhaustively() {
    // Model-check the offload rendezvous control plane: every drop/delay
    // schedule of CTS-offload / FIN-offload must recover and deliver the
    // strided payload intact.
    silence_expected_panics();
    let v = explore(&scenarios::offload_2rank());
    assert!(
        !v.stats.truncated,
        "offload rendezvous exploration hit the schedule cap — not exhaustive"
    );
    if let Some(c) = &v.counterexample {
        panic!(
            "offload rendezvous violated under schedule {} (from {}): {}",
            c.schedule, c.original, c.message
        );
    }
    assert!(
        v.stats.schedules > 1,
        "the offload rendezvous must expose retry branches to explore"
    );
}

#[test]
fn offload_scenario_fifo_run_is_clean_and_deterministic() {
    silence_expected_panics();
    let scenario = scenarios::offload_2rank();
    let a = scenario.run_once(&Schedule::empty());
    let b = scenario.run_once(&Schedule::empty());
    assert_eq!(a.end, b.end, "FIFO replay diverged in virtual time");
    assert!(a.end.is_ok(), "FIFO run failed: {:?}", a.end);
    assert!(a.reports.is_empty(), "FIFO run produced sanitizer reports");
    assert!(
        !a.log.is_empty(),
        "the offload rendezvous recorded no decision points"
    );
}
