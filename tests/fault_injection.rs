//! Seeded fault campaigns: the rendezvous retry/recovery protocol under
//! control-packet loss/delay, RDMA error CQEs and registration pin limits.
//!
//! The contract under test: on a fault-injecting fabric
//! ([`ib_sim::FaultSpec`]) the MPI layer retransmits and recovers, and the
//! *data* an application observes is byte-identical to a fault-free run —
//! only virtual time and the retransmit counters differ. Faults are drawn
//! from a seeded xorshift stream, so every campaign here is exactly
//! reproducible.

use std::sync::Arc;

use gpu_nc_repro::halo3d::{run_halo3d_campaign, Halo3dParams, Variant as HaloVariant};
use gpu_nc_repro::ib_sim::FaultSpec;
use gpu_nc_repro::mpi_sim::{ChunkPolicy, Datatype, MpiConfig, MpiError, MpiWorld, RetryConfig};
use gpu_nc_repro::stencil2d::{
    run_stencil_campaign, RunOptions, StencilParams, Variant as StencilVariant,
};
use hostmem::HostBuf;
use sim_core::lock::Mutex;
use sim_core::{instrument, SanitizerMode};

fn drop_and_error_spec(seed: u64) -> FaultSpec {
    FaultSpec {
        ctrl_drop: 0.10,
        ctrl_delay: 0.10,
        delay_ns: 30_000,
        rdma_error: 0.05,
        ..FaultSpec::seeded(seed)
    }
}

#[test]
fn halo3d_campaign_is_byte_identical_under_faults() {
    // The i-faces (local.1 x local.2 doubles = 10 KiB) exceed the eager
    // limit, so every iteration pushes rendezvous traffic through the
    // faulty control plane; the smaller j/k faces stay eager.
    let p = Halo3dParams {
        grid: (2, 1, 2),
        local: (16, 32, 40),
        iters: 3,
    };
    let (clean, _) =
        run_halo3d_campaign::<f64>(p, HaloVariant::Mv2, true, SanitizerMode::Off, None);
    let before = instrument::global().snapshot();
    let (faulty, _) = run_halo3d_campaign::<f64>(
        p,
        HaloVariant::Mv2,
        true,
        SanitizerMode::Off,
        Some(drop_and_error_spec(42)),
    );
    let delta = instrument::global().delta(&before);
    assert_eq!(clean.ranks.len(), faulty.ranks.len());
    for (c, f) in clean.ranks.iter().zip(&faulty.ranks) {
        assert_eq!(
            c.interior, f.interior,
            "rank {}: fault campaign corrupted the field",
            c.rank
        );
    }
    // The campaign must actually have exercised the fault paths. (Counters
    // are process-global, so only lower bounds are meaningful.)
    assert!(
        delta.get("fault.ctrl_drop").copied().unwrap_or(0) > 0,
        "10% ctrl drop over a 4-rank halo exchange must drop something: {delta:?}"
    );
    let retries: u64 = delta
        .iter()
        .filter(|(k, _)| k.starts_with("retry."))
        .map(|(_, v)| *v)
        .sum();
    assert!(
        retries > 0,
        "dropped control packets must surface as retransmissions: {delta:?}"
    );
}

#[test]
fn stencil2d_campaign_is_byte_identical_under_faults() {
    let p = StencilParams {
        py: 2,
        px: 2,
        rows: 24,
        cols: 20,
        iters: 3,
    };
    let opts = RunOptions {
        timed_breakdown: false,
        collect_interiors: true,
    };
    let (clean, _) =
        run_stencil_campaign::<f32>(p, StencilVariant::Mv2, opts, SanitizerMode::Off, None);
    let (faulty, _) = run_stencil_campaign::<f32>(
        p,
        StencilVariant::Mv2,
        opts,
        SanitizerMode::Off,
        Some(drop_and_error_spec(7)),
    );
    for (c, f) in clean.ranks.iter().zip(&faulty.ranks) {
        assert_eq!(
            c.interior, f.interior,
            "rank {}: fault campaign corrupted the field",
            c.rank
        );
    }
}

#[test]
fn fault_campaign_is_clean_under_collect_sanitizer() {
    // Retransmissions and tolerated duplicates are protocol-*legal* on a
    // faulty fabric: the sanitizer must not report them.
    let p = Halo3dParams {
        grid: (2, 1, 1),
        local: (6, 5, 4),
        iters: 2,
    };
    let (_, reports) = run_halo3d_campaign::<f64>(
        p,
        HaloVariant::Mv2,
        false,
        SanitizerMode::Collect,
        Some(drop_and_error_spec(1234)),
    );
    assert!(
        reports.is_empty(),
        "retransmission/recovery must be sanitizer-clean, got: {reports:?}"
    );
}

/// One bidirectional exchange mixing all three data protocols: eager,
/// rendezvous direct (contiguous) and rendezvous staged (vector datatype).
/// Returns the three receive buffers of the observing rank (rank 1).
fn mixed_exchange(faults: Option<FaultSpec>, cfg: MpiConfig) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    type Bufs = (Vec<u8>, Vec<u8>, Vec<u8>);
    let out: Arc<Mutex<Bufs>> = Arc::new(Mutex::new((Vec::new(), Vec::new(), Vec::new())));
    let sink = Arc::clone(&out);
    let mut world = MpiWorld::new(2).with_config(cfg);
    if let Some(spec) = faults {
        world = world.with_faults(spec);
    }
    world.run(move |comm| {
        let byte = Datatype::byte();
        byte.commit();
        // 64Ki rows of 4 bytes, stride 16 — non-contiguous, so the host
        // staged (vbuf) pipeline carries it.
        let vec_t = Datatype::vector(1 << 16, 1, 4, &Datatype::float());
        vec_t.commit();
        let me = comm.rank() as u8;
        let peer = 1 - comm.rank();

        let eager_tx = HostBuf::from_vec((0..256).map(|i| (i as u8) ^ me).collect());
        let direct_tx = HostBuf::from_vec((0..300 << 10).map(|i| ((i % 251) as u8) ^ me).collect());
        let staged_tx = HostBuf::from_vec((0..1 << 20).map(|i| ((i % 249) as u8) ^ me).collect());
        let eager_rx = HostBuf::alloc(256);
        let direct_rx = HostBuf::alloc(300 << 10);
        let staged_rx = HostBuf::alloc(1 << 20);

        let reqs = vec![
            comm.irecv(eager_rx.base(), 256, &byte, peer, 1u32),
            comm.irecv(direct_rx.base(), 300 << 10, &byte, peer, 2u32),
            comm.irecv(staged_rx.base(), 1, &vec_t, peer, 3u32),
            comm.isend(eager_tx.base(), 256, &byte, peer, 1),
            comm.isend(direct_tx.base(), 300 << 10, &byte, peer, 2),
            comm.isend(staged_tx.base(), 1, &vec_t, peer, 3),
        ];
        comm.waitall(reqs);
        if comm.rank() == 1 {
            *sink.lock() = (
                eager_rx.read(0, 256),
                direct_rx.read(0, 300 << 10),
                staged_rx.read(0, 1 << 20),
            );
        }
    });
    Arc::try_unwrap(out)
        .map(|m| m.into_inner())
        .unwrap_or_else(|a| a.lock().clone())
}

#[test]
fn any_drop_schedule_delivers_identical_data() {
    let cfg = MpiConfig::default();
    let clean = mixed_exchange(None, cfg.clone());
    for seed in 1..=6u64 {
        for drop in [0.05, 0.15, 0.30] {
            let spec = FaultSpec {
                ctrl_drop: drop,
                ctrl_delay: 0.20,
                delay_ns: 40_000,
                rdma_error: 0.02,
                ..FaultSpec::seeded(seed)
            };
            let faulty = mixed_exchange(Some(spec), cfg.clone());
            assert_eq!(
                clean, faulty,
                "seed {seed}, drop {drop}: delivered data diverged from the fault-free run"
            );
        }
    }
}

#[test]
fn fault_schedule_is_deterministic() {
    let run = || {
        let spec = FaultSpec {
            ctrl_drop: 0.15,
            ctrl_delay: 0.15,
            delay_ns: 25_000,
            rdma_error: 0.05,
            ..FaultSpec::seeded(99)
        };
        let data: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&data);
        let end = MpiWorld::new(2).with_faults(spec).run(move |comm| {
            let t = Datatype::byte();
            t.commit();
            if comm.rank() == 0 {
                let buf = HostBuf::from_vec((0..600 << 10).map(|i| (i % 241) as u8).collect());
                comm.send(buf.base(), 600 << 10, &t, 1, 0);
            } else {
                let buf = HostBuf::alloc(600 << 10);
                comm.recv(buf.base(), 600 << 10, &t, 0, 0);
                *sink.lock() = buf.read(0, 600 << 10);
            }
        });
        let bytes = Arc::try_unwrap(data)
            .map(|m| m.into_inner())
            .unwrap_or_else(|a| a.lock().clone());
        (end, bytes)
    };
    let (end_a, data_a) = run();
    let (end_b, data_b) = run();
    assert_eq!(end_a, end_b, "same seed must replay the same virtual time");
    assert_eq!(data_a, data_b);
}

#[test]
fn pin_limit_degrades_direct_to_staged() {
    // Vbuf pools (registered with the infallible path at MPI_Init) take
    // 4 x 64 KiB = 256 KiB per rank; a 320 KiB pin limit then refuses the
    // 1 MiB user-buffer registration of the direct R-PUT, and the transfer
    // must fall back to the staged path — correctly.
    let cfg = MpiConfig {
        policy: ChunkPolicy::Fixed,
        chunk_size: 64 << 10,
        pool_vbufs: 4,
        window_slots: 2,
        ..MpiConfig::default()
    };
    let spec = FaultSpec {
        pin_limit_bytes: Some(320 << 10),
        ..FaultSpec::seeded(5)
    };
    let before = instrument::global().snapshot();
    let ok: Arc<Mutex<bool>> = Arc::new(Mutex::new(false));
    let sink = Arc::clone(&ok);
    MpiWorld::new(2)
        .with_config(cfg)
        .with_faults(spec)
        .run(move |comm| {
            let t = Datatype::byte();
            t.commit();
            let n = 1 << 20;
            if comm.rank() == 0 {
                let buf = HostBuf::from_vec((0..n).map(|i| (i % 253) as u8).collect());
                comm.send(buf.base(), n, &t, 1, 0);
            } else {
                let buf = HostBuf::alloc(n);
                let st = comm.recv(buf.base(), n, &t, 0, 0);
                assert_eq!(st.bytes, n);
                assert!((0..n).all(|i| buf.read(i, 1)[0] == (i % 253) as u8));
                *sink.lock() = true;
            }
        });
    assert!(*ok.lock(), "receiver never validated the payload");
    let delta = instrument::global().delta(&before);
    assert!(
        delta.get("fault.reg_fail").copied().unwrap_or(0) > 0,
        "the pin limit never fired: {delta:?}"
    );
    assert!(
        delta.get("fallback.direct_to_staged").copied().unwrap_or(0) > 0,
        "a refused registration must degrade to the staged path: {delta:?}"
    );
}

#[test]
fn exhausted_retries_surface_a_typed_error() {
    // Total control-packet loss with a tiny retry budget: the send must
    // fail with MpiError::RetriesExhausted, not hang and not panic.
    let cfg = MpiConfig {
        retry: RetryConfig {
            timeout_ns: 10_000,
            max_retries: 3,
        },
        ..MpiConfig::default()
    };
    let spec = FaultSpec {
        ctrl_drop: 1.0,
        ..FaultSpec::seeded(8)
    };
    let saw: Arc<Mutex<Option<MpiError>>> = Arc::new(Mutex::new(None));
    let sink = Arc::clone(&saw);
    MpiWorld::new(2)
        .with_config(cfg)
        .with_faults(spec)
        .run(move |comm| {
            let t = Datatype::byte();
            t.commit();
            if comm.rank() == 0 {
                let buf = HostBuf::alloc(1 << 20);
                let req = comm.isend(buf.base(), 1 << 20, &t, 1, 0);
                let err = comm
                    .wait_result(req)
                    .expect_err("every RTS is dropped; the send cannot succeed");
                *sink.lock() = Some(err);
            } else {
                // Stay alive (in virtual time) while rank 0 burns through
                // its retry budget; never post the receive.
                sim_core::sleep(sim_core::SimDur::from_millis(10));
            }
        });
    let err = saw.lock().clone().expect("rank 0 never reported");
    match err {
        MpiError::RetriesExhausted { op, peer, attempts } => {
            assert_eq!(op, "rts");
            assert_eq!(peer, 1);
            assert_eq!(attempts, 4, "first transmission + max_retries");
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

#[test]
fn reg_cache_is_bounded_and_evicts_lru() {
    // Five distinct 1 MiB user buffers sent back-to-back through the direct
    // R-PUT path, with a 2-entry registration cache: the cache must evict
    // (deregistering old buffers) instead of growing without bound.
    let cfg = MpiConfig {
        reg_cache_entries: 2,
        ..MpiConfig::default()
    };
    let before = instrument::global().snapshot();
    MpiWorld::new(2).with_config(cfg).run(move |comm| {
        let t = Datatype::byte();
        t.commit();
        let n = 1 << 20;
        for round in 0..5u32 {
            if comm.rank() == 0 {
                let buf = HostBuf::from_vec(vec![round as u8; n]);
                comm.send(buf.base(), n, &t, 1, round);
            } else {
                let buf = HostBuf::alloc(n);
                comm.recv(buf.base(), n, &t, 0, round);
                assert_eq!(buf.read(0, n), vec![round as u8; n]);
            }
            assert!(
                comm.reg_cache_len() <= 2,
                "round {round}: reg cache exceeded its bound"
            );
        }
    });
    let delta = instrument::global().delta(&before);
    assert!(
        delta.get("reg_cache.evict").copied().unwrap_or(0) > 0,
        "5 distinct buffers through a 2-entry cache must evict: {delta:?}"
    );
    assert!(
        delta.get("reg_cache.miss").copied().unwrap_or(0) > 0,
        "cold registrations must count as misses: {delta:?}"
    );
}

#[test]
fn reg_cache_hits_on_repeated_buffers() {
    // The same send buffer reused across rendezvous transfers must register
    // once and hit the cache afterwards (MVAPICH2's reg-cache behavior).
    let before = instrument::global().snapshot();
    MpiWorld::new(2).run(move |comm| {
        let t = Datatype::byte();
        t.commit();
        let n = 1 << 20;
        let buf = if comm.rank() == 0 {
            HostBuf::from_vec((0..n).map(|i| (i % 253) as u8).collect())
        } else {
            HostBuf::alloc(n)
        };
        for round in 0..4u32 {
            if comm.rank() == 0 {
                comm.send(buf.base(), n, &t, 1, round);
            } else {
                comm.recv(buf.base(), n, &t, 0, round);
            }
        }
    });
    let delta = instrument::global().delta(&before);
    assert!(
        delta.get("reg_cache.hit").copied().unwrap_or(0) > 0,
        "repeated rendezvous on one buffer must hit the reg cache: {delta:?}"
    );
}
