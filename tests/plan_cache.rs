//! The committed-plan cache on the rendezvous hot path: after a warm-up
//! transfer, steady-state sends of the same `(datatype, count)` must never
//! re-expand the typemap — every lookup is a plan-cache hit.
//!
//! These tests assert on the *per-type* counters ([`Datatype::expand_count`]
//! via `flat()`, [`Datatype::plan_cache_stats`]), which are immune to other
//! tests running concurrently in this binary.

use gpu_nc_repro::mpi_sim::{Datatype, MpiWorld};
use gpu_nc_repro::mv2_gpu_nc::GpuCluster;
use hostmem::HostBuf;

/// 4096 single-float blocks on a 4-float stride: 16 KiB packed — above the
/// eager threshold (staged rendezvous) and never contiguous.
fn noncontig_16k() -> Datatype {
    let dt = Datatype::vector(4096, 1, 4, &Datatype::float());
    dt.commit();
    dt
}

fn footprint(dt: &Datatype) -> usize {
    let (lo, hi) = dt.flat().byte_range(1);
    assert!(lo >= 0);
    hi as usize + 64
}

fn host_transfer(dt: &Datatype, iters: u32) {
    let dtc = dt.clone();
    let fp = footprint(dt);
    MpiWorld::new(2).run(move |comm| {
        let buf = HostBuf::alloc(fp);
        for tag in 0..iters {
            if comm.rank() == 0 {
                comm.send(buf.base(), 1, &dtc, 1, tag);
            } else {
                comm.recv(buf.base(), 1, &dtc, 0, tag);
            }
        }
    });
}

fn gpu_transfer(dt: &Datatype, iters: u32) {
    let dtc = dt.clone();
    let fp = footprint(dt);
    GpuCluster::new(2).run(move |env| {
        let dev = env.gpu.malloc(fp);
        for tag in 0..iters {
            if env.comm.rank() == 0 {
                env.comm.send(dev, 1, &dtc, 1, tag);
            } else {
                env.comm.recv(dev, 1, &dtc, 0, tag);
            }
        }
        env.gpu.free(dev);
    });
}

#[test]
fn host_rendezvous_steady_state_never_reexpands() {
    let dt = noncontig_16k();
    host_transfer(&dt, 1); // warm-up: builds and caches the plan
    let expands = dt.flat().expand_count();
    let warm = dt.plan_cache_stats();
    assert!(expands > 0, "warm-up must have expanded the type");

    host_transfer(&dt, 8);
    assert_eq!(
        dt.flat().expand_count(),
        expands,
        "steady-state sends re-expanded the typemap"
    );
    let s = dt.plan_cache_stats();
    assert_eq!(s.misses, warm.misses, "steady state missed the plan cache");
    assert!(s.hits > warm.hits, "steady state must hit the plan cache");
}

#[test]
fn gpu_rendezvous_steady_state_never_reexpands() {
    let dt = noncontig_16k();
    gpu_transfer(&dt, 1);
    let expands = dt.flat().expand_count();
    let warm = dt.plan_cache_stats();
    assert!(expands > 0, "warm-up must have expanded the type");

    gpu_transfer(&dt, 8);
    assert_eq!(
        dt.flat().expand_count(),
        expands,
        "steady-state sends re-expanded the typemap"
    );
    let s = dt.plan_cache_stats();
    assert_eq!(s.misses, warm.misses, "steady state missed the plan cache");
    assert!(s.hits > warm.hits, "steady state must hit the plan cache");
}
