//! Satellite guard: tracing must never perturb simulated time.
//!
//! Replicates `bench --bin pipeline_bench`'s `measure()` loop for a subset
//! of the paper's message sizes and checks the virtual latencies against
//! the committed `results/BENCH_pipeline.json` **exactly** (f64 equality on
//! round-tripped values) — once with an enabled recorder and once with a
//! disabled one. Any span emission that slept, blocked or advanced the
//! virtual clock would shift these numbers and fail the comparison.

use std::sync::Arc;

use gpu_nc_repro::mpi_sim::{ChunkPolicy, MpiConfig};
use gpu_nc_repro::mv2_gpu_nc::baselines::{fill_vector, verify_vector, VectorXfer};
use gpu_nc_repro::mv2_gpu_nc::{GpuCluster, Recorder};
use gpu_nc_repro::sim_trace::json::{parse, JsonValue};
use sim_core::lock::Mutex;

/// Mirror of `pipeline_bench::measure` (the bin keeps the authoritative
/// copy; this must stay in lock-step for the identity check to be exact).
fn measure(cfg: MpiConfig, total: usize, iters: u32, rec: Recorder) -> Vec<u64> {
    let lat: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&lat);
    GpuCluster::new(2)
        .mpi_config(cfg)
        .recorder(rec)
        .run(move |env| {
            let x = VectorXfer::paper(total);
            let dt = x.dtype();
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 11);
                env.comm.send(dev, 1, &dt, 1, 99_999);
            } else {
                env.comm.recv(dev, 1, &dt, 0, 99_999);
            }
            for it in 0..iters {
                env.comm.barrier();
                let t0 = sim_core::now();
                if env.comm.rank() == 0 {
                    env.comm.send(dev, 1, &dt, 1, it);
                } else {
                    env.comm.recv(dev, 1, &dt, 0, it);
                    sink.lock().push((sim_core::now() - t0).as_nanos());
                }
            }
            if env.comm.rank() == 1 {
                verify_vector(&env.gpu, dev, &x, 11);
            }
            env.gpu.free(dev);
        });
    Arc::try_unwrap(lat)
        .map(|m| m.into_inner())
        .unwrap_or_else(|a| a.lock().clone())
}

fn committed_reference() -> JsonValue {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/BENCH_pipeline.json"
    ))
    .expect("committed reference missing");
    parse(&text).expect("committed reference must be valid JSON")
}

fn row_for(doc: &JsonValue, bytes: usize) -> &JsonValue {
    doc.get("data")
        .and_then(JsonValue::as_arr)
        .expect("data array")
        .iter()
        .find(|r| r.get("bytes").and_then(JsonValue::as_f64) == Some(bytes as f64))
        .unwrap_or_else(|| panic!("no committed row for {bytes} bytes"))
}

#[test]
fn pipeline_bench_times_match_committed_reference_with_tracing_on_and_off() {
    let doc = committed_reference();
    let iters = doc
        .get("iters_per_size")
        .and_then(JsonValue::as_f64)
        .expect("iters_per_size") as u32;
    let fixed_cfg = MpiConfig {
        policy: ChunkPolicy::Fixed,
        ..MpiConfig::default()
    };
    let adaptive_cfg = MpiConfig::default();

    // One eager and two staged sizes keep the test fast while covering both
    // protocol paths and the adaptive tuner.
    for bytes in [4096usize, 64 << 10, 1 << 20] {
        let row = row_for(&doc, bytes);
        let fixed_best = row
            .get("fixed_best_us")
            .and_then(JsonValue::as_f64)
            .unwrap();
        let adaptive_best = row
            .get("adaptive_best_us")
            .and_then(JsonValue::as_f64)
            .unwrap();
        let adaptive_settled = row
            .get("adaptive_settled_us")
            .and_then(JsonValue::as_f64)
            .unwrap();

        // Each run gets its own Recorder: the metrics registry namespaces
        // counters per fabric, so sharing one recorder across two fabrics
        // would collide (and the registry now panics instead of silently
        // dropping the second registration).
        for label in ["on", "off"] {
            let mk = || match label {
                "on" => Recorder::new(),
                _ => Recorder::off(),
            };
            let f = measure(fixed_cfg.clone(), bytes, iters, mk());
            let a = measure(adaptive_cfg.clone(), bytes, iters, mk());
            assert_eq!(
                *f.iter().min().unwrap() as f64 / 1e3,
                fixed_best,
                "{bytes} bytes, tracing {label}: fixed best diverged from reference"
            );
            assert_eq!(
                *a.iter().min().unwrap() as f64 / 1e3,
                adaptive_best,
                "{bytes} bytes, tracing {label}: adaptive best diverged from reference"
            );
            assert_eq!(
                *a.last().unwrap() as f64 / 1e3,
                adaptive_settled,
                "{bytes} bytes, tracing {label}: adaptive settled diverged from reference"
            );
        }
    }
}

#[test]
fn enabled_and_disabled_recorders_replay_identical_virtual_time() {
    // End-to-end virtual completion time of a whole traced cluster run,
    // recorder on vs off (broader than the per-iteration latencies above:
    // this covers barriers, finalize and the fabric teardown).
    let run = |rec: Recorder| {
        GpuCluster::new(2).recorder(rec).run(|env| {
            let x = VectorXfer::paper(768 << 10);
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 3);
                env.comm.send(dev, 1, &x.dtype(), 1, 0);
            } else {
                env.comm.recv(dev, 1, &x.dtype(), 0, 0);
                verify_vector(&env.gpu, dev, &x, 3);
            }
        })
    };
    let on = run(Recorder::new());
    let off = run(Recorder::off());
    assert_eq!(on, off, "tracing perturbed the virtual clock");
}
