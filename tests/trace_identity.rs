//! Satellite guard: tracing must never perturb simulated time.
//!
//! Replicates `bench --bin pipeline_bench`'s `measure()` loop for a subset
//! of the paper's message sizes and checks the virtual latencies against
//! the committed `results/BENCH_pipeline.json` **exactly** (f64 equality on
//! round-tripped values) — once with an enabled recorder and once with a
//! disabled one. Any span emission that slept, blocked or advanced the
//! virtual clock would shift these numbers and fail the comparison.

use std::sync::Arc;

use gpu_nc_repro::mpi_sim::{ChunkPolicy, MpiConfig};
use gpu_nc_repro::mv2_gpu_nc::baselines::{fill_vector, verify_vector, VectorXfer};
use gpu_nc_repro::mv2_gpu_nc::{GpuCluster, Recorder};
use gpu_nc_repro::sim_trace::json::{parse, JsonValue};
use sim_core::lock::Mutex;

/// Mirror of `pipeline_bench::measure` (the bin keeps the authoritative
/// copy; this must stay in lock-step for the identity check to be exact).
fn measure(cfg: MpiConfig, total: usize, iters: u32, rec: Recorder) -> Vec<u64> {
    let lat: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&lat);
    GpuCluster::new(2)
        .mpi_config(cfg)
        .recorder(rec)
        .run(move |env| {
            let x = VectorXfer::paper(total);
            let dt = x.dtype();
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 11);
                env.comm.send(dev, 1, &dt, 1, 99_999);
            } else {
                env.comm.recv(dev, 1, &dt, 0, 99_999);
            }
            for it in 0..iters {
                env.comm.barrier();
                let t0 = sim_core::now();
                if env.comm.rank() == 0 {
                    env.comm.send(dev, 1, &dt, 1, it);
                } else {
                    env.comm.recv(dev, 1, &dt, 0, it);
                    sink.lock().push((sim_core::now() - t0).as_nanos());
                }
            }
            if env.comm.rank() == 1 {
                verify_vector(&env.gpu, dev, &x, 11);
            }
            env.gpu.free(dev);
        });
    Arc::try_unwrap(lat)
        .map(|m| m.into_inner())
        .unwrap_or_else(|a| a.lock().clone())
}

fn committed_reference() -> JsonValue {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/BENCH_pipeline.json"
    ))
    .expect("committed reference missing");
    parse(&text).expect("committed reference must be valid JSON")
}

fn row_for(doc: &JsonValue, bytes: usize) -> &JsonValue {
    doc.get("data")
        .and_then(JsonValue::as_arr)
        .expect("data array")
        .iter()
        .find(|r| r.get("bytes").and_then(JsonValue::as_f64) == Some(bytes as f64))
        .unwrap_or_else(|| panic!("no committed row for {bytes} bytes"))
}

#[test]
fn pipeline_bench_times_match_committed_reference_with_tracing_on_and_off() {
    let doc = committed_reference();
    let iters = doc
        .get("iters_per_size")
        .and_then(JsonValue::as_f64)
        .expect("iters_per_size") as u32;
    let fixed_cfg = MpiConfig {
        policy: ChunkPolicy::Fixed,
        ..MpiConfig::default()
    };
    let adaptive_cfg = MpiConfig::default();

    // One eager and two staged sizes keep the test fast while covering both
    // protocol paths and the adaptive tuner.
    for bytes in [4096usize, 64 << 10, 1 << 20] {
        let row = row_for(&doc, bytes);
        let fixed_best = row
            .get("fixed_best_us")
            .and_then(JsonValue::as_f64)
            .unwrap();
        let adaptive_best = row
            .get("adaptive_best_us")
            .and_then(JsonValue::as_f64)
            .unwrap();
        let adaptive_settled = row
            .get("adaptive_settled_us")
            .and_then(JsonValue::as_f64)
            .unwrap();

        // Each run gets its own Recorder: the metrics registry namespaces
        // counters per fabric, so sharing one recorder across two fabrics
        // would collide (and the registry now panics instead of silently
        // dropping the second registration).
        for label in ["on", "off"] {
            let mk = || match label {
                "on" => Recorder::new(),
                _ => Recorder::off(),
            };
            let f = measure(fixed_cfg.clone(), bytes, iters, mk());
            let a = measure(adaptive_cfg.clone(), bytes, iters, mk());
            assert_eq!(
                *f.iter().min().unwrap() as f64 / 1e3,
                fixed_best,
                "{bytes} bytes, tracing {label}: fixed best diverged from reference"
            );
            assert_eq!(
                *a.iter().min().unwrap() as f64 / 1e3,
                adaptive_best,
                "{bytes} bytes, tracing {label}: adaptive best diverged from reference"
            );
            assert_eq!(
                *a.last().unwrap() as f64 / 1e3,
                adaptive_settled,
                "{bytes} bytes, tracing {label}: adaptive settled diverged from reference"
            );
        }
    }
}

#[test]
fn explicit_default_scheme_replays_committed_baselines() {
    // The scheme-layer refactor routes every send through SchemeSelector;
    // spelling out its default (`Auto { offload: false }`) must replay the
    // committed references event-for-event — first the pipeline latencies,
    // then the halo3d placement benchmark's ppn=2 row.
    use gpu_nc_repro::halo3d::{Halo3dParams, Halo3dRank, Variant};
    use gpu_nc_repro::mpi_sim::SchemeSel;

    let doc = committed_reference();
    let iters = doc
        .get("iters_per_size")
        .and_then(JsonValue::as_f64)
        .expect("iters_per_size") as u32;
    let cfg = MpiConfig {
        policy: ChunkPolicy::Fixed,
        scheme: SchemeSel::Auto { offload: false },
        ..MpiConfig::default()
    };
    for bytes in [64 << 10, 1 << 20] {
        let row = row_for(&doc, bytes);
        let fixed_best = row
            .get("fixed_best_us")
            .and_then(JsonValue::as_f64)
            .unwrap();
        let f = measure(cfg.clone(), bytes, iters, Recorder::off());
        assert_eq!(
            *f.iter().min().unwrap() as f64 / 1e3,
            fixed_best,
            "{bytes} bytes: explicit default scheme diverged from reference"
        );
    }

    // BENCH_ppn's ppn=2 blocked placement (mirror of `ppn_sweep`'s
    // measurement loop; the bin keeps the authoritative copy).
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/BENCH_ppn.json"
    ))
    .expect("committed ppn reference missing");
    let ppn_doc = parse(&text).expect("committed ppn reference must be valid JSON");
    let blocked_ms = ppn_doc
        .get("data")
        .and_then(JsonValue::as_arr)
        .expect("data array")
        .iter()
        .find(|r| r.get("ppn").and_then(JsonValue::as_f64) == Some(2.0))
        .expect("no committed row for ppn 2")
        .get("blocked_ms")
        .and_then(JsonValue::as_f64)
        .unwrap();
    let p = Halo3dParams {
        grid: (2, 2, 4),
        local: (96, 96, 48),
        iters: 3,
    };
    let walls: Arc<Mutex<Vec<sim_core::SimDur>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&walls);
    let cfg = MpiConfig {
        scheme: SchemeSel::Auto { offload: false },
        ..MpiConfig::default()
    };
    GpuCluster::new(p.nranks())
        .mpi_config(cfg)
        .ppn(2)
        .run(move |env| {
            let mut rk = Halo3dRank::<f32>::new(env, p);
            env.comm.barrier();
            let t0 = sim_core::now();
            for _ in 0..p.iters {
                rk.step(Variant::Mv2);
            }
            env.comm.barrier();
            sink.lock().push(sim_core::now() - t0);
            rk.free();
        });
    let wall = walls.lock().iter().copied().max().expect("no ranks ran");
    assert_eq!(
        wall.as_millis_f64(),
        blocked_ms,
        "explicit default scheme diverged from the committed ppn=2 placement row"
    );
}

#[test]
fn enabled_and_disabled_recorders_replay_identical_virtual_time() {
    // End-to-end virtual completion time of a whole traced cluster run,
    // recorder on vs off (broader than the per-iteration latencies above:
    // this covers barriers, finalize and the fabric teardown).
    let run = |rec: Recorder| {
        GpuCluster::new(2).recorder(rec).run(|env| {
            let x = VectorXfer::paper(768 << 10);
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 3);
                env.comm.send(dev, 1, &x.dtype(), 1, 0);
            } else {
                env.comm.recv(dev, 1, &x.dtype(), 0, 0);
                verify_vector(&env.gpu, dev, &x, 3);
            }
        })
    };
    let on = run(Recorder::new());
    let off = run(Recorder::off());
    assert_eq!(on, off, "tracing perturbed the virtual clock");
}
