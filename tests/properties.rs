//! Property-style tests on the core invariants: randomized datatype trees
//! and message geometries must round-trip exactly through every transfer
//! path (CPU pack, GPU pack, eager, staged pipeline, any block size).
//!
//! Each test runs a fixed number of cases drawn from a seeded [`XorShift64`]
//! stream, so failures are fully reproducible.

use gpu_nc_repro::mpi_sim::{Datatype, MpiConfig, MpiWorld};
use gpu_nc_repro::mv2_gpu_nc::GpuCluster;
use hostmem::HostBuf;
use xorshift::XorShift64;

/// A random, commit-able datatype tree plus the count to send. Kept small
/// so a single case stays fast.
#[derive(Debug, Clone)]
struct TypeSpec {
    dt: DtSpec,
    count: usize,
}

#[derive(Debug, Clone)]
enum DtSpec {
    Float,
    Double,
    Contig(usize, Box<DtSpec>),
    Vector(usize, usize, usize, Box<DtSpec>), // count, blocklen, stride>=blocklen
    Indexed(Vec<(usize, usize)>, Box<DtSpec>),
}

impl DtSpec {
    fn build(&self) -> Datatype {
        match self {
            DtSpec::Float => Datatype::float(),
            DtSpec::Double => Datatype::double(),
            DtSpec::Contig(n, c) => Datatype::contiguous(*n, &c.build()),
            DtSpec::Vector(n, bl, stride, c) => {
                Datatype::vector(*n, *bl, *stride as isize, &c.build())
            }
            DtSpec::Indexed(blocks, c) => {
                // Make displacements strictly increasing so blocks do not
                // overlap (overlapping receive layouts are invalid MPI).
                let mut disp = 0isize;
                let blocks: Vec<(usize, isize)> = blocks
                    .iter()
                    .map(|&(bl, gap)| {
                        let d = disp;
                        disp += (bl + gap) as isize;
                        (bl, d)
                    })
                    .collect();
                Datatype::indexed(&blocks, &c.build())
            }
        }
    }
}

fn leaf(rng: &mut XorShift64) -> DtSpec {
    if rng.gen_bool() {
        DtSpec::Float
    } else {
        DtSpec::Double
    }
}

/// A random datatype tree of at most `depth` derived levels over a leaf.
fn dt_spec(rng: &mut XorShift64, depth: usize) -> DtSpec {
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0, 4) {
        // Descend without wrapping sometimes, so shallow trees also occur.
        0 => dt_spec(rng, depth - 1),
        1 => DtSpec::Contig(rng.gen_range(1, 5), Box::new(dt_spec(rng, depth - 1))),
        2 => {
            let bl = rng.gen_range(1, 3);
            let stride = bl + rng.gen_range(0, 4);
            DtSpec::Vector(
                rng.gen_range(1, 6),
                bl,
                stride,
                Box::new(dt_spec(rng, depth - 1)),
            )
        }
        _ => {
            let blocks: Vec<(usize, usize)> = (0..rng.gen_range(1, 4))
                .map(|_| (rng.gen_range(1, 3), rng.gen_range(0, 4)))
                .collect();
            DtSpec::Indexed(blocks, Box::new(dt_spec(rng, depth - 1)))
        }
    }
}

fn type_spec(rng: &mut XorShift64) -> TypeSpec {
    TypeSpec {
        dt: dt_spec(rng, 2),
        count: rng.gen_range(1, 4),
    }
}

/// Footprint of (count, dtype) in bytes, with headroom.
fn footprint(dt: &Datatype, count: usize) -> usize {
    let (lo, hi) = dt.flat().byte_range(count);
    assert!(lo >= 0, "these specs never go negative");
    (hi as usize).max(1) + 64
}

/// Reference pack on the CPU from a byte pattern.
fn reference_pack(dt: &Datatype, count: usize, pattern: &[u8]) -> Vec<u8> {
    let segs = dt.flat().expanded(count);
    let mut out = Vec::new();
    for s in segs {
        let o = s.offset as usize;
        out.extend_from_slice(&pattern[o..o + s.len]);
    }
    out
}

/// Host -> host transfers with random derived types deliver exactly the
/// typemap bytes, regardless of path (eager or staged).
#[test]
fn host_transfer_round_trips() {
    let mut rng = XorShift64::new(0x5EED_0001);
    for _ in 0..24 {
        let spec = type_spec(&mut rng);
        let seed = rng.next_u64() as u8;
        let dt = spec.dt.build();
        dt.commit();
        let count = spec.count;
        let fp = footprint(&dt, count);
        let pattern: Vec<u8> = (0..fp).map(|i| (i as u8).wrapping_add(seed)).collect();
        let dtc = dt.clone();
        let patc = pattern.clone();
        MpiWorld::new(2).run(move |comm| {
            if comm.rank() == 0 {
                let buf = HostBuf::from_vec(patc.clone());
                comm.send(buf.base(), count, &dtc, 1, 0);
            } else {
                let buf = HostBuf::alloc(fp);
                comm.recv(buf.base(), count, &dtc, 0, 0);
                assert_eq!(
                    reference_pack(&dtc, count, &buf.read(0, fp)),
                    reference_pack(&dtc, count, &patc),
                    "typemap bytes differ"
                );
            }
        });
    }
}

/// GPU -> GPU transfers with random derived types deliver exactly the
/// typemap bytes through the device pack/unpack pipeline.
#[test]
fn gpu_transfer_round_trips() {
    let mut rng = XorShift64::new(0x5EED_0002);
    for _ in 0..24 {
        let spec = type_spec(&mut rng);
        let seed = rng.next_u64() as u8;
        let dt = spec.dt.build();
        dt.commit();
        let count = spec.count;
        let fp = footprint(&dt, count);
        let pattern: Vec<u8> = (0..fp)
            .map(|i| (i as u8).wrapping_mul(13).wrapping_add(seed))
            .collect();
        let dtc = dt.clone();
        let patc = pattern.clone();
        GpuCluster::new(2).run(move |env| {
            let dev = env.gpu.malloc(fp);
            if env.comm.rank() == 0 {
                env.gpu.write_bytes(dev, &patc);
                env.comm.send(dev, count, &dtc, 1, 0);
            } else {
                env.comm.recv(dev, count, &dtc, 0, 0);
                let got = env.gpu.read_bytes(dev, fp);
                assert_eq!(
                    reference_pack(&dtc, count, &got),
                    reference_pack(&dtc, count, &patc),
                    "typemap bytes differ"
                );
            }
        });
    }
}

/// The pipeline delivers identical bytes for any block size and any
/// message size (chunk boundaries hit arbitrary offsets).
#[test]
fn any_block_size_is_correct() {
    let mut rng = XorShift64::new(0x5EED_0003);
    for _ in 0..24 {
        let total = rng.gen_range(1, 96) << 10;
        let block = 1usize << rng.gen_range(12, 18);
        GpuCluster::new(2).block_size(block).run(move |env| {
            use gpu_nc_repro::mv2_gpu_nc::baselines::{fill_vector, verify_vector, VectorXfer};
            let x = VectorXfer::paper(total);
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 5);
                env.comm.send(dev, 1, &x.dtype(), 1, 0);
            } else {
                env.comm.recv(dev, 1, &x.dtype(), 0, 0);
                verify_vector(&env.gpu, dev, &x, 5);
            }
        });
    }
}

/// Matching semantics, specific tags: however the receiver permutes its
/// posts, each receive pairs with the message of its tag.
#[test]
fn matching_specific_tags_pairs_by_tag() {
    let mut rng = XorShift64::new(0x5EED_0004);
    for _ in 0..24 {
        let ntags = rng.gen_range(2, 10);
        let send_order: Vec<u32> = {
            let mut v: Vec<u32> = (0..ntags as u32).collect();
            rng.shuffle(&mut v);
            v
        };
        let post_order: Vec<u32> = {
            let mut v: Vec<u32> = (0..ntags as u32).collect();
            rng.shuffle(&mut v);
            v
        };
        MpiWorld::new(2).run(move |comm| {
            let t = Datatype::byte();
            t.commit();
            if comm.rank() == 0 {
                for &tag in &send_order {
                    let buf = HostBuf::from_vec(vec![tag as u8 + 1; 64]);
                    comm.send(buf.base(), 64, &t, 1, tag);
                }
            } else {
                let reqs: Vec<_> = post_order
                    .iter()
                    .map(|&tag| {
                        let buf = HostBuf::alloc(64);
                        (tag, buf.clone(), comm.irecv(buf.base(), 64, &t, 0, tag))
                    })
                    .collect();
                for (tag, buf, req) in reqs {
                    let st = comm.wait(req).unwrap();
                    assert_eq!(st.tag, tag);
                    assert_eq!(buf.read(0, 64), vec![tag as u8 + 1; 64]);
                }
            }
        });
    }
}

/// Matching semantics, full wildcards: receives complete in message
/// arrival order (MPI's non-overtaking rule).
#[test]
fn matching_wildcards_preserve_arrival_order() {
    let mut rng = XorShift64::new(0x5EED_0005);
    for _ in 0..24 {
        let n = rng.gen_range(1, 12);
        let seed = rng.next_u64() as u8;
        MpiWorld::new(2).run(move |comm| {
            let t = Datatype::byte();
            t.commit();
            if comm.rank() == 0 {
                for i in 0..n {
                    let buf = HostBuf::from_vec(vec![seed.wrapping_add(i as u8); 32]);
                    comm.send(buf.base(), 32, &t, 1, i as u32);
                }
            } else {
                use gpu_nc_repro::mpi_sim::{ANY_SOURCE, ANY_TAG};
                let reqs: Vec<_> = (0..n)
                    .map(|_| {
                        let buf = HostBuf::alloc(32);
                        (
                            buf.clone(),
                            comm.irecv(buf.base(), 32, &t, ANY_SOURCE, ANY_TAG),
                        )
                    })
                    .collect();
                for (i, (buf, req)) in reqs.into_iter().enumerate() {
                    let st = comm.wait(req).unwrap();
                    assert_eq!(st.tag, i as u32, "wildcard recv {i} overtaken");
                    assert_eq!(buf.read(0, 32), vec![seed.wrapping_add(i as u8); 32]);
                }
            }
        });
    }
}

/// Staged-path flow control survives arbitrary (tiny) window/pool
/// configurations without deadlock or corruption.
#[test]
fn tiny_windows_never_deadlock() {
    for window in 1usize..4 {
        for pool_extra in 0usize..4 {
            let cfg = MpiConfig {
                window_slots: window,
                pool_vbufs: 2 * window + pool_extra,
                ..MpiConfig::default()
            };
            GpuCluster::new(2).mpi_config(cfg).run(move |env| {
                use gpu_nc_repro::mv2_gpu_nc::baselines::{fill_vector, verify_vector, VectorXfer};
                let x = VectorXfer::paper(512 << 10);
                let dev = env.gpu.malloc(x.extent());
                if env.comm.rank() == 0 {
                    fill_vector(&env.gpu, dev, &x, 8);
                    env.comm.send(dev, 1, &x.dtype(), 1, 0);
                } else {
                    env.comm.recv(dev, 1, &x.dtype(), 0, 0);
                    verify_vector(&env.gpu, dev, &x, 8);
                }
            });
        }
    }
}

/// A cached plan is byte-identical to a fresh expansion — segments, prefix
/// sums, layout classification and packed-range mapping — including after
/// the LRU has evicted and re-inserted the count.
#[test]
fn cached_plan_matches_fresh_expansion() {
    use gpu_nc_repro::mv2_gpu_nc::SegmentMap;

    let mut rng = XorShift64::new(0x5EED_0005);
    let mut evictions = 0u64;
    for _ in 0..12 {
        let dt = dt_spec(&mut rng, 2).build();
        dt.commit();
        let before = dt.plan_cache_stats();
        // More distinct counts than the cache holds, revisited in random
        // order: every count gets evicted and rebuilt at least once.
        let lookups = 40usize;
        for _ in 0..lookups {
            let count = rng.gen_range(1, 24);
            let plan = dt.plan(count);
            let fresh = dt.flat().expanded(count);
            assert_eq!(plan.segments(), &fresh[..], "segment list diverged");
            assert_eq!(
                plan.layout(),
                &gpu_nc_repro::mpi_sim::flat::FlatType::classify(&fresh),
                "layout diverged"
            );
            let map = SegmentMap::new(fresh);
            assert_eq!(plan.total(), map.total());
            assert_eq!(plan.num_segments(), map.num_segments());
            for _ in 0..4 {
                let total = plan.total();
                let off = rng.gen_range(0, total + 1);
                let len = rng.gen_range(0, total - off + 1);
                assert_eq!(plan.pieces(off, len), map.pieces(off, len));
            }
        }
        let s = dt.plan_cache_stats();
        assert_eq!(
            (s.hits + s.misses) - (before.hits + before.misses),
            lookups as u64,
            "every lookup is a hit or a miss"
        );
        evictions += s.evictions;
    }
    assert!(evictions > 0, "count churn past capacity must evict");
}
