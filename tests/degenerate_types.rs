//! Degenerate datatype geometries through the pack/unpack paths: zero-count
//! vectors, zero blocklens, negative strides (hvector/hindexed), and resized
//! extents. For each type the CPU pack (`mpi_sim::pack`) and the GPU pack
//! (`mv2_gpu_nc::gpu_pack`) must produce byte-for-byte identical packed
//! streams, and unpacking must land every byte at the same offsets.

use gpu_nc_repro::mpi_sim::pack::{PackCursor, UnpackCursor};
use gpu_nc_repro::mpi_sim::Datatype;
use gpu_nc_repro::mv2_gpu_nc::gpu_pack::{enqueue_gather, enqueue_scatter};
use gpu_nc_repro::mv2_gpu_nc::SegmentMap;
use gpu_sim::Gpu;
use hostmem::HostBuf;
use sim_core::Sim;

/// Pack `count` elements of `dt` from an identical byte pattern on the CPU
/// and on the GPU, assert the packed streams match, then unpack the stream
/// on both sides and assert the destination footprints match byte-for-byte.
fn check_pack_unpack(dt: &Datatype, count: usize) {
    dt.commit();
    let (lo, hi) = dt.flat().byte_range(count);
    // Base offset inside the allocation such that negative displacements
    // stay in bounds; headroom on both sides.
    let base_off = (-lo).max(0) as usize + 16;
    let span = base_off + hi.max(0) as usize + 16;
    let pattern: Vec<u8> = (0..span).map(|i| (i as u8).wrapping_mul(31)).collect();
    let segs = dt.flat().expanded(count);
    let total: usize = segs.iter().map(|s| s.len).sum();

    // CPU pack.
    let host = HostBuf::from_vec(pattern.clone());
    let mut cur = PackCursor::new(host.ptr(base_off), segs.clone());
    let cpu_packed = cur.pack_all();
    assert_eq!(cpu_packed.len(), total, "CPU pack length");

    // CPU unpack into a fresh buffer; only typemap bytes may be written.
    let host_out = HostBuf::alloc(span);
    let mut ucur = UnpackCursor::new(host_out.ptr(base_off), segs.clone());
    ucur.unpack_from(&cpu_packed);
    assert!(ucur.finished(), "CPU unpack consumed the whole stream");

    // GPU pack/unpack inside the simulator.
    let segs2 = segs.clone();
    let packed2 = cpu_packed.clone();
    let pattern2 = pattern.clone();
    let out: std::sync::Arc<std::sync::Mutex<(Vec<u8>, Vec<u8>)>> = Default::default();
    let out2 = std::sync::Arc::clone(&out);
    let sim = Sim::new();
    sim.spawn("gpu-pack", move || {
        let gpu = Gpu::tesla_c2050(0);
        let stream = gpu.create_stream();
        let user = gpu.malloc(span.max(1));
        gpu.write_bytes(user, &pattern2);
        let userp = user.add(base_off);
        let m = SegmentMap::new(segs2.clone());
        assert_eq!(m.total(), total);

        let gpu_packed = if total == 0 {
            // Nothing to move: the piece list is empty and no device op is
            // enqueued (the stager skips zero-byte chunks the same way).
            Vec::new()
        } else {
            let tbuf = gpu.malloc(total);
            enqueue_gather(&gpu, &stream, userp, &m.pieces(0, total), tbuf).wait();
            gpu.read_bytes(tbuf, total)
        };

        // Scatter the CPU-packed stream into a fresh device buffer.
        let dst = gpu.malloc(span.max(1));
        gpu.write_bytes(dst, &vec![0u8; span]);
        if total != 0 {
            let sbuf = gpu.malloc(total);
            gpu.write_bytes(sbuf, &packed2);
            enqueue_scatter(&gpu, &stream, dst.add(base_off), &m.pieces(0, total), sbuf).wait();
        }
        let unpacked = gpu.read_bytes(dst, span);
        *out2.lock().unwrap() = (gpu_packed, unpacked);
    });
    sim.run();
    let (gpu_packed, gpu_unpacked) = std::sync::Arc::try_unwrap(out)
        .unwrap()
        .into_inner()
        .unwrap();

    assert_eq!(cpu_packed, gpu_packed, "CPU and GPU pack bytes differ");
    let cpu_unpacked = host_out.read(0, span);
    assert_eq!(
        cpu_unpacked, gpu_unpacked,
        "CPU and GPU unpack footprints differ"
    );
    // Every typemap byte round-tripped; everything else stayed zero.
    for s in &segs {
        let o = (base_off as isize + s.offset) as usize;
        assert_eq!(
            &cpu_unpacked[o..o + s.len],
            &pattern[o..o + s.len],
            "typemap bytes must round-trip"
        );
    }
}

#[test]
fn zero_count_vector_packs_nothing() {
    let dt = Datatype::vector(0, 4, 8, &Datatype::float());
    assert_eq!(dt.size(), 0);
    check_pack_unpack(&dt, 1);
    check_pack_unpack(&dt, 3);
}

#[test]
fn zero_blocklen_vector_packs_nothing() {
    let dt = Datatype::vector(4, 0, 8, &Datatype::float());
    assert_eq!(dt.size(), 0);
    check_pack_unpack(&dt, 1);
}

#[test]
fn zero_count_send_of_nonempty_type() {
    // count = 0 of a perfectly ordinary type.
    let dt = Datatype::vector(4, 2, 4, &Datatype::float());
    check_pack_unpack(&dt, 0);
}

#[test]
fn negative_stride_vector() {
    // Blocks walk backwards through memory: displacements are negative.
    let dt = Datatype::vector(4, 1, -2, &Datatype::float());
    check_pack_unpack(&dt, 1);
    check_pack_unpack(&dt, 2);
}

#[test]
fn negative_stride_hvector() {
    // Byte-stride walks backwards and is not a multiple of the child
    // extent (exercises unaligned negative displacements).
    let dt = Datatype::hvector(5, 1, -12, &Datatype::float());
    check_pack_unpack(&dt, 1);
}

#[test]
fn negative_displacement_hindexed() {
    let dt = Datatype::hindexed(&[(2, -24), (1, 0), (3, -60)], &Datatype::float());
    check_pack_unpack(&dt, 1);
}

#[test]
fn resized_extent_changes_element_spacing() {
    // A float resized to a 16-byte extent: consecutive count elements land
    // 16 bytes apart, leaving 12-byte holes.
    let dt = Datatype::resized(&Datatype::float(), 0, 16);
    assert_eq!(dt.extent(), 16);
    check_pack_unpack(&dt, 4);
}

#[test]
fn resized_negative_lb() {
    // Lower bound behind the buffer pointer: the first element's bytes sit
    // at a negative displacement.
    let dt = Datatype::resized(&Datatype::float(), -8, 24);
    check_pack_unpack(&dt, 3);
}

#[test]
fn resized_vector_tiles_with_overlap_free_holes() {
    // The paper's common idiom: a strided column type resized so count
    // columns interleave.
    let col = Datatype::vector(4, 1, 4, &Datatype::float());
    let dt = Datatype::resized(&col, 0, 4);
    check_pack_unpack(&dt, 3);
}

#[test]
fn degenerate_types_through_mpi_transfer() {
    // End-to-end: a zero-size message and a negative-stride message through
    // the full MPI path (host buffers).
    use gpu_nc_repro::mpi_sim::MpiWorld;
    for dt in [
        Datatype::vector(0, 4, 8, &Datatype::float()),
        Datatype::hvector(4, 1, -8, &Datatype::double()),
    ] {
        dt.commit();
        let (lo, hi) = dt.flat().byte_range(1);
        let base_off = (-lo).max(0) as usize + 8;
        let span = base_off + hi.max(0) as usize + 8;
        let pattern: Vec<u8> = (0..span).map(|i| (i as u8).wrapping_add(3)).collect();
        let segs = dt.flat().expanded(1);
        let dtc = dt.clone();
        let patc = pattern.clone();
        MpiWorld::new(2).run(move |comm| {
            if comm.rank() == 0 {
                let buf = HostBuf::from_vec(patc.clone());
                comm.send(buf.ptr(base_off), 1, &dtc, 1, 0);
            } else {
                let buf = HostBuf::alloc(span);
                comm.recv(buf.ptr(base_off), 1, &dtc, 0, 0);
                for s in dtc.flat().expanded(1) {
                    let o = (base_off as isize + s.offset) as usize;
                    assert_eq!(
                        buf.read(o, s.len),
                        patc[o..o + s.len].to_vec(),
                        "typemap bytes must survive the transfer"
                    );
                }
            }
        });
        drop(segs);
    }
}
