//! Seeded-bug regression tests for simsan, the simulator's sanitizer.
//!
//! Each test plants a real bug (a missed completion wait, a leaked vbuf, a
//! park cycle) and asserts that the sanitizer reports it with a useful
//! diagnostic — and that the same workload is silent with the sanitizer
//! off, or with the bug fixed. A final test runs representative benchmark
//! workloads under `Collect` and requires zero reports: the instrumented
//! library itself must be clean.

use gpu_nc_repro::mpi_sim::MpiConfig;
use gpu_nc_repro::mv2_gpu_nc::baselines::{fill_vector, recv_mv2, send_mv2, VectorXfer};
use gpu_nc_repro::mv2_gpu_nc::GpuCluster;
use gpu_sim::Gpu;
use hostmem::HostBuf;
use sim_core::{Report, ReportKind, SanitizerMode, Sim};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Seeded bug #1: enqueue an async D2H copy and read the destination host
/// buffer without waiting on the returned completion. The bytes are correct
/// (the simulator moves them eagerly) — only the sanitizer can tell the
/// modeled timeline read the buffer while the DMA was still in flight.
fn missed_wait_workload(mode: SanitizerMode, wait_first: bool) -> Vec<Report> {
    let sim = Sim::new();
    sim.set_sanitizer(mode);
    sim.spawn("racer", move || {
        let gpu = Gpu::tesla_c2050(0);
        let stream = gpu.create_stream();
        let dev = gpu.malloc(4096);
        gpu.write_bytes(dev, &vec![7u8; 4096]);
        let host = HostBuf::alloc(4096);
        let c = gpu.memcpy_async(host.base(), dev, 4096, &stream);
        if wait_first {
            c.wait();
        }
        let mut out = vec![0u8; 4096];
        host.read_into(0, &mut out);
        assert_eq!(out, vec![7u8; 4096], "bytes are right either way");
    });
    sim.run();
    sim.sanitizer_reports()
}

#[test]
fn missed_wait_race_is_reported() {
    let reports = missed_wait_workload(SanitizerMode::Collect, false);
    let races: Vec<&Report> = reports
        .iter()
        .filter(|r| r.kind == ReportKind::Race)
        .collect();
    assert!(
        !races.is_empty(),
        "expected a race report, got: {reports:?}"
    );
    let r = races[0];
    assert_eq!(r.process, "racer", "report names the accessing process");
    assert!(
        r.message.contains("host buffer"),
        "report names the buffer: {}",
        r.message
    );
    assert!(
        r.message.contains("memcpy_async"),
        "report names the in-flight op: {}",
        r.message
    );
    // The rendered report carries the virtual-time instant and process.
    let line = r.to_string();
    assert!(line.contains("at ") && line.contains("racer"), "{line}");
}

#[test]
fn missed_wait_race_silent_when_off() {
    assert!(missed_wait_workload(SanitizerMode::Off, false).is_empty());
}

#[test]
fn waited_copy_is_clean() {
    assert!(missed_wait_workload(SanitizerMode::Collect, true).is_empty());
}

#[test]
#[should_panic(expected = "simsan")]
fn missed_wait_race_panics_in_panic_mode() {
    missed_wait_workload(SanitizerMode::Panic, false);
}

/// Seeded bug #2: `MpiConfig::fault_leak_vbuf` makes the sender's engine
/// drop the first reaped send vbuf instead of returning it to the pool.
/// Pool accounting is reconciled at `Sim::run` exit.
fn staged_transfer_reports(fault: bool) -> Vec<Report> {
    let cfg = MpiConfig {
        fault_leak_vbuf: fault,
        ..MpiConfig::default()
    };
    let (_end, reports) = GpuCluster::new(2)
        .mpi_config(cfg)
        .sanitizer(SanitizerMode::Collect)
        .run_with_reports(|env| {
            let x = VectorXfer::paper(512 << 10);
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 3);
                send_mv2(&env.comm, dev, x, 1, 0);
            } else {
                recv_mv2(&env.comm, dev, x, 0, 0);
            }
        });
    reports
}

#[test]
fn leaked_vbuf_is_reported() {
    let reports = staged_transfer_reports(true);
    let leaks: Vec<&Report> = reports
        .iter()
        .filter(|r| r.kind == ReportKind::PoolLeak)
        .collect();
    assert!(
        !leaks.is_empty(),
        "expected a pool-leak report, got: {reports:?}"
    );
    assert!(
        leaks.iter().any(|r| r.message.contains("rank0.send_pool")),
        "leak report names the sender's pool: {leaks:?}"
    );
    assert!(
        leaks[0].message.contains("1 buffer(s) outstanding"),
        "leak report counts the missing vbuf: {}",
        leaks[0].message
    );
}

#[test]
fn staged_transfer_without_fault_is_clean() {
    assert!(staged_transfer_reports(false).is_empty());
}

/// Seeded bug #2b: `MpiConfig::fault_drop_dev_credit` makes the receiver
/// of a D2D device transfer swallow its first CREDIT-dev instead of
/// sending it, stranding the sender's packed device tbuf. The sender's
/// `dev_tbuf` pool accounting must flag the leak at exit. The sender polls
/// its isend a bounded number of times and then abandons it — the credit
/// will never come — so the job still reaches exit reconciliation.
fn d2d_transfer_reports(fault: bool) -> Vec<Report> {
    let cfg = MpiConfig {
        fault_drop_dev_credit: fault,
        ..MpiConfig::default()
    };
    let (_end, reports) = GpuCluster::new(2)
        .mpi_config(cfg)
        .ppn(2) // co-located: the D2D (shared-GPU) rendezvous path
        .sanitizer(SanitizerMode::Collect)
        .run_with_reports(|env| {
            let x = VectorXfer::paper(64 << 10);
            let dev = env.gpu.malloc(x.extent());
            if env.comm.rank() == 0 {
                fill_vector(&env.gpu, dev, &x, 9);
                let req = env.comm.isend(dev, 1, &x.dtype(), 1, 0);
                for _ in 0..64 {
                    if env.comm.test(&req) {
                        break;
                    }
                    sim_core::sleep(sim_core::SimDur::from_micros(20));
                }
                if env.comm.test(&req) {
                    env.comm.wait(req); // reap (clean run)
                }
                // Faulted run: the credit never comes — abandon the
                // request. The quiescence invariant flags that too.
            } else {
                env.comm.recv(dev, 1, &x.dtype(), 0, 0);
            }
        });
    reports
}

#[test]
fn dropped_dev_credit_leaks_tbuf() {
    let reports = d2d_transfer_reports(true);
    let leaks: Vec<&Report> = reports
        .iter()
        .filter(|r| r.kind == ReportKind::PoolLeak)
        .collect();
    assert!(
        !leaks.is_empty(),
        "expected a dev_tbuf pool-leak report, got: {reports:?}"
    );
    assert!(
        leaks.iter().any(|r| r.message.contains("rank0.dev_tbuf")),
        "leak report names the sender's device tbuf pool: {leaks:?}"
    );
}

#[test]
fn d2d_transfer_without_fault_is_clean() {
    assert!(d2d_transfer_reports(false).is_empty());
}

/// Seeded bug #2c: `MpiConfig::fault_shm_eager_oversize` makes the sender
/// apply twice the configured shm eager limit toward co-located peers, so
/// a payload between the real limit and twice the limit ships eagerly.
/// The receiver-side protocol linter must flag the oversized payload.
fn shm_eager_reports(fault: bool) -> Vec<Report> {
    use gpu_nc_repro::mpi_sim::{Datatype, MpiWorld};
    let cfg = MpiConfig {
        fault_shm_eager_oversize: fault,
        ..MpiConfig::default()
    };
    let n = 40 << 10; // between shm_eager_limit (32 KiB) and 2x
    let (_end, reports) = MpiWorld::new(2)
        .with_config(cfg)
        .with_ppn(2)
        .with_sanitizer(SanitizerMode::Collect)
        .run_with_reports(move |comm| {
            let t = Datatype::byte();
            t.commit();
            if comm.rank() == 0 {
                let buf = HostBuf::from_vec(vec![5u8; n]);
                comm.send(buf.base(), n, &t, 1, 0);
            } else {
                let buf = HostBuf::alloc(n);
                let st = comm.recv(buf.base(), n, &t, 0, 0);
                assert_eq!(st.bytes, n);
                assert_eq!(buf.read(0, n), vec![5u8; n], "payload still delivered");
            }
        });
    reports
}

#[test]
fn oversized_shm_eager_is_reported() {
    let reports = shm_eager_reports(true);
    let protocol: Vec<&Report> = reports
        .iter()
        .filter(|r| r.kind == ReportKind::Protocol)
        .collect();
    assert!(
        !protocol.is_empty(),
        "expected a protocol report, got: {reports:?}"
    );
    assert!(
        protocol[0].message.contains("eager payload"),
        "linter names the oversized payload: {}",
        protocol[0].message
    );
}

#[test]
fn shm_eager_within_limit_is_clean() {
    assert!(shm_eager_reports(false).is_empty());
}

/// Seeded bug #3: a park cycle. Two processes each wait on a completion
/// only the other would complete. The kernel's hang panic must carry a
/// wait-for graph naming each process and what it blocks on, and the
/// sanitizer records one Deadlock report per parked process.
#[test]
fn deadlock_names_parked_processes() {
    let sim = Sim::new();
    sim.set_sanitizer(SanitizerMode::Collect);
    let a = sim_core::Completion::pending();
    let b = sim_core::Completion::pending();
    {
        let (a, b) = (a.clone(), b.clone());
        sim.spawn("alice", move || {
            b.wait(); // bob never completes it
            a.complete_at(sim_core::now());
        });
    }
    sim.spawn("bob", move || {
        a.wait(); // alice is stuck first
        b.complete_at(sim_core::now());
    });
    let err =
        catch_unwind(AssertUnwindSafe(|| sim.run())).expect_err("a park cycle must abort the run");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
    assert!(msg.contains("simulation deadlock"), "{msg}");
    assert!(msg.contains("wait-for graph"), "{msg}");
    assert!(msg.contains("alice") && msg.contains("bob"), "{msg}");

    let reports = sim.sanitizer_reports();
    let deadlocks: Vec<&Report> = reports
        .iter()
        .filter(|r| r.kind == ReportKind::Deadlock)
        .collect();
    assert_eq!(deadlocks.len(), 2, "one report per parked process");
    assert!(deadlocks.iter().any(|r| r.process == "alice"));
    assert!(deadlocks.iter().any(|r| r.process == "bob"));
}

/// The benchmark workloads themselves must be clean: a staged GPU-to-GPU
/// transfer and an eager host exchange run under `Collect` with zero
/// reports, so the sanitizer can stay on in benchmark runs.
#[test]
fn benchmark_workloads_clean_under_sanitizer() {
    let (_end, reports) = GpuCluster::new(2)
        .sanitizer(SanitizerMode::Collect)
        .run_with_reports(|env| {
            // Staged non-contiguous pipeline, both directions.
            let x = VectorXfer::paper(256 << 10);
            let dev = env.gpu.malloc(x.extent());
            let me = env.comm.rank();
            if me == 0 {
                fill_vector(&env.gpu, dev, &x, 5);
                send_mv2(&env.comm, dev, x, 1, 0);
                recv_mv2(&env.comm, dev, x, 1, 1);
            } else {
                recv_mv2(&env.comm, dev, x, 0, 0);
                send_mv2(&env.comm, dev, x, 0, 1);
            }
            env.comm.barrier();
            // Contiguous host path (eager and rendezvous sizes).
            let t = gpu_nc_repro::mpi_sim::Datatype::byte();
            t.commit();
            for (bytes, tag) in [(1usize << 10, 2u32), (256 << 10, 3)] {
                let buf = HostBuf::alloc(bytes);
                if me == 0 {
                    env.comm.send(buf.base(), bytes, &t, 1, tag);
                } else {
                    env.comm.recv(buf.base(), bytes, &t, 0, tag);
                }
            }
        });
    assert!(
        reports.is_empty(),
        "benchmark workloads must be sanitizer-clean: {reports:?}"
    );
}

/// The Figure 2 pack-scheme benchmark (the paper's §I-A measurement) is
/// also clean under the sanitizer: every scheme waits on the right
/// completions before verifying its output.
#[test]
fn pack_schemes_clean_under_sanitizer() {
    use gpu_nc_repro::mv2_gpu_nc::schemes::{PackBench, PackScheme};
    let sim = Sim::new();
    sim.set_sanitizer(SanitizerMode::Collect);
    sim.spawn("fig2", || {
        let gpu = Gpu::tesla_c2050(0);
        let b = PackBench::new(&gpu, 64 << 10, 4, 16);
        for s in PackScheme::ALL {
            b.run(s);
            b.verify(s);
        }
        b.free();
    });
    sim.run();
    let reports = sim.sanitizer_reports();
    assert!(
        reports.is_empty(),
        "pack schemes must be sanitizer-clean: {reports:?}"
    );
}

/// The application benchmarks under the (default) adaptive chunk policy
/// must also be clean: the autotuner changes chunk geometry between
/// transfers, which exercises vbuf reuse and flow control in patterns the
/// fixed policy never produces.
#[test]
fn halo3d_adaptive_clean_under_sanitizer() {
    use gpu_nc_repro::halo3d::{run_halo3d_reports, Halo3dParams, Variant};
    let (_out, reports) = run_halo3d_reports::<f32>(
        Halo3dParams {
            grid: (2, 1, 1),
            local: (32, 64, 64), // 16 KiB i-faces: staged rendezvous
            iters: 2,
        },
        Variant::Mv2,
        false,
        SanitizerMode::Collect,
    );
    assert!(
        reports.is_empty(),
        "halo3d must be sanitizer-clean under the adaptive policy: {reports:?}"
    );
}

#[test]
fn stencil2d_adaptive_clean_under_sanitizer() {
    use gpu_nc_repro::stencil2d::{run_stencil_reports, RunOptions, StencilParams, Variant};
    let (_out, reports) = run_stencil_reports::<f64>(
        StencilParams {
            py: 1,
            px: 2,
            rows: 1200, // 9.6 KiB column halo: staged rendezvous
            cols: 16,
            iters: 2,
        },
        Variant::Mv2,
        RunOptions::default(),
        SanitizerMode::Collect,
    );
    assert!(
        reports.is_empty(),
        "stencil2d must be sanitizer-clean under the adaptive policy: {reports:?}"
    );
}
