//! Collectives under seeded fault injection: every algorithm family
//! (naive control, flat single-level, hierarchical node-leader) must
//! deliver byte-identical data on a faulty fabric.
//!
//! The campaign chains the collectives a real application mixes — bcast,
//! gather, allgatherv, allreduce, alltoallv — on a 2-node (ppn = 4)
//! layout with payloads past the eager limit, so the leader fan-in/out
//! and the inter-node legs all push rendezvous traffic through the lossy
//! control plane. Faults come from a seeded xorshift stream
//! ([`ib_sim::FaultSpec`]); only virtual time and the retransmit
//! counters may differ from a fault-free run.

use std::collections::BTreeMap;
use std::sync::Arc;

use gpu_nc_repro::ib_sim::FaultSpec;
use gpu_nc_repro::mpi_sim::{CollAlgo, Datatype, MpiConfig, MpiWorld, ReduceOp};
use hostmem::{bytes_to_scalars, scalars_to_bytes, HostBuf};
use sim_core::lock::Mutex;
use sim_core::{instrument, SimTime};

const N: usize = 8;
const PPN: usize = 4;

fn faulty_spec(seed: u64) -> FaultSpec {
    FaultSpec {
        ctrl_drop: 0.08,
        ctrl_delay: 0.08,
        delay_ns: 25_000,
        rdma_error: 0.03,
        ..FaultSpec::seeded(seed)
    }
}

/// Integer-valued f32 so every reduction is exact in any fold order.
fn term(rank: usize, k: usize) -> f32 {
    ((rank * 13 + k * 7) % 17) as f32 - 8.0
}

/// Chain bcast → gather → allgatherv → allreduce → alltoallv on one
/// world; every rank appends everything it received to its digest.
/// Returns the virtual end time and the per-rank digests.
fn coll_campaign(algo: CollAlgo, faults: Option<FaultSpec>) -> (SimTime, Vec<Vec<u8>>) {
    let digests: Arc<Mutex<BTreeMap<usize, Vec<u8>>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let sink = Arc::clone(&digests);
    let mut cfg = MpiConfig {
        ppn: PPN,
        ..MpiConfig::default()
    };
    cfg.coll.algo = algo;
    let mut world = MpiWorld::new(N).with_config(cfg);
    if let Some(spec) = faults {
        world = world.with_faults(spec);
    }
    let end = world.run(move |comm| {
        let me = comm.rank();
        let byte = Datatype::byte();
        byte.commit();
        let f32t = Datatype::float();
        f32t.commit();
        let mut digest: Vec<u8> = Vec::new();

        // Bcast: 64 KiB from rank 0 — several rendezvous chunks on the
        // inter-node leg.
        let bn = 64 << 10;
        let bbuf = if me == 0 {
            HostBuf::from_vec((0..bn).map(|i| (i % 251) as u8).collect())
        } else {
            HostBuf::alloc(bn)
        };
        comm.bcast(bbuf.base(), bn, &byte, 0);
        digest.extend(bbuf.read(0, bn));

        // Gather: 12 KiB per rank to rank 3 (a non-leader, so the leader
        // funnel has a real inter-node hop).
        let gn = 12 << 10;
        let gsend = HostBuf::from_vec((0..gn).map(|i| ((i + me * 7) % 249) as u8).collect());
        let grecv = HostBuf::alloc(gn * N);
        comm.gather(gsend.base(), grecv.base(), gn, &byte, 3);
        if me == 3 {
            digest.extend(grecv.read(0, gn * N));
        }

        // Allgatherv: ragged 9–16 KiB blocks, byte displacements.
        let counts: Vec<usize> = (0..N).map(|j| (9 << 10) + (j % 4) * 1600).collect();
        let displs: Vec<usize> = counts
            .iter()
            .scan(0usize, |off, &c| {
                let d = *off;
                *off += c;
                Some(d)
            })
            .collect();
        let total: usize = counts.iter().sum();
        let asend = HostBuf::from_vec(
            (0..counts[me])
                .map(|i| ((i * 3 + me) % 253) as u8)
                .collect(),
        );
        let arecv = HostBuf::alloc(total);
        comm.allgatherv(
            asend.base(),
            counts[me],
            &byte,
            arecv.base(),
            &counts,
            &displs,
            &byte,
        );
        digest.extend(arecv.read(0, total));

        // Allreduce: 16 Ki f32 (64 KiB), pipelined on the hier path.
        let rn = 16 << 10;
        let vals: Vec<f32> = (0..rn).map(|k| term(me, k)).collect();
        let rsend = HostBuf::from_vec(scalars_to_bytes(&vals));
        let rrecv = HostBuf::alloc(rn * 4);
        comm.allreduce(rsend.base(), rrecv.base(), rn, &f32t, ReduceOp::Sum);
        let got = bytes_to_scalars::<f32>(&rrecv.read(0, rn * 4));
        for (k, g) in got.iter().enumerate().step_by(499) {
            let want: f32 = (0..N).map(|r| term(r, k)).sum();
            assert_eq!(*g, want, "allreduce element {k} wrong on rank {me}");
        }
        digest.extend(rrecv.read(0, rn * 4));

        // Alltoallv: ragged ~9.6–12 KiB per pair — every pair rendezvous.
        let cnt = |src: usize, dst: usize| (2400 + ((src * 5 + dst * 3) % 5) * 160) * 4;
        let scounts: Vec<usize> = (0..N).map(|j| cnt(me, j)).collect();
        let rcounts: Vec<usize> = (0..N).map(|j| cnt(j, me)).collect();
        let sdispls: Vec<usize> = scounts
            .iter()
            .scan(0usize, |off, &c| {
                let d = *off;
                *off += c;
                Some(d)
            })
            .collect();
        let rdispls: Vec<usize> = rcounts
            .iter()
            .scan(0usize, |off, &c| {
                let d = *off;
                *off += c;
                Some(d)
            })
            .collect();
        let stot: usize = scounts.iter().sum();
        let rtot: usize = rcounts.iter().sum();
        let tsend = HostBuf::from_vec((0..stot).map(|i| ((i + me * 11) % 241) as u8).collect());
        let trecv = HostBuf::alloc(rtot);
        comm.alltoallv(
            tsend.base(),
            &scounts,
            &sdispls,
            &byte,
            trecv.base(),
            &rcounts,
            &rdispls,
            &byte,
        );
        digest.extend(trecv.read(0, rtot));

        sink.lock().insert(me, digest);
    });
    let map = Arc::try_unwrap(digests)
        .map(|m| m.into_inner())
        .unwrap_or_else(|a| a.lock().clone());
    assert_eq!(map.len(), N, "some rank never reported its digest");
    (end, map.into_values().collect())
}

#[test]
fn collectives_deliver_identical_data_under_faults() {
    for algo in [CollAlgo::Naive, CollAlgo::Flat, CollAlgo::Hier] {
        let (_, clean) = coll_campaign(algo, None);
        let before = instrument::global().snapshot();
        for seed in [3u64, 11] {
            let (_, faulty) = coll_campaign(algo, Some(faulty_spec(seed)));
            for (r, (c, f)) in clean.iter().zip(&faulty).enumerate() {
                assert_eq!(
                    c, f,
                    "{algo:?} seed {seed}: rank {r}'s collective results diverged \
                     from the fault-free run"
                );
            }
        }
        let delta = instrument::global().delta(&before);
        assert!(
            delta.get("fault.ctrl_drop").copied().unwrap_or(0) > 0,
            "{algo:?}: the campaign never exercised a control drop: {delta:?}"
        );
        let retries: u64 = delta
            .iter()
            .filter(|(k, _)| k.starts_with("retry."))
            .map(|(_, v)| *v)
            .sum();
        assert!(
            retries > 0,
            "{algo:?}: dropped control packets must surface as retransmissions: {delta:?}"
        );
    }
}

#[test]
fn faulty_collective_campaign_is_deterministic() {
    let (end_a, data_a) = coll_campaign(CollAlgo::Hier, Some(faulty_spec(42)));
    let (end_b, data_b) = coll_campaign(CollAlgo::Hier, Some(faulty_spec(42)));
    assert_eq!(end_a, end_b, "same seed must replay the same virtual time");
    assert_eq!(data_a, data_b, "same seed must replay the same data");
}
