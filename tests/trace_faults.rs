//! Satellite guard: under a seeded fault campaign, the trace agrees with
//! the engine's own recovery counters.
//!
//! Every `retry.*` / `dup.*` / `fallback.*` counter increment in the MPI
//! engine also emits an instant on that rank's `proto` trace lane (they go
//! through one `note()` helper), and every injected fabric fault emits a
//! `fault.*` instant on the HCA lane. This test runs a lossy-fabric
//! campaign with a recorder attached and checks the two views against each
//! other — the trace is only trustworthy observability if it cannot drift
//! from the counters it visualizes.

use std::collections::BTreeMap;

use gpu_nc_repro::ib_sim::FaultSpec;
use gpu_nc_repro::mv2_gpu_nc::baselines::{fill_vector, verify_vector, VectorXfer};
use gpu_nc_repro::mv2_gpu_nc::{GpuCluster, Recorder};
use gpu_nc_repro::sim_trace::EventKind;

/// Instant counts per (lane kind, event name), read back from the ring.
fn instant_counts(rec: &Recorder) -> BTreeMap<(&'static str, &'static str), u64> {
    let lanes = rec.lanes();
    let mut out = BTreeMap::new();
    for ev in rec.events() {
        if let EventKind::Instant { name, .. } = ev.kind {
            let kind = lanes[ev.lane as usize].kind.label();
            *out.entry((kind, name)).or_insert(0) += 1;
        }
    }
    out
}

#[test]
fn recovery_trace_events_agree_with_engine_counters() {
    let spec = FaultSpec {
        ctrl_drop: 0.15,
        ctrl_delay: 0.10,
        delay_ns: 30_000,
        rdma_error: 0.05,
        ..FaultSpec::seeded(4242)
    };
    let rec = Recorder::new();
    GpuCluster::new(2)
        .faults(spec)
        .recorder(rec.clone())
        .run(|env| {
            // Several staged vector transfers through the lossy fabric.
            let x = VectorXfer::paper(512 << 10);
            let dev = env.gpu.malloc(x.extent());
            for tag in 0..6u32 {
                if env.comm.rank() == 0 {
                    fill_vector(&env.gpu, dev, &x, tag as u8);
                    env.comm.send(dev, 1, &x.dtype(), 1, tag);
                } else {
                    env.comm.recv(dev, 1, &x.dtype(), 0, tag);
                    verify_vector(&env.gpu, dev, &x, tag as u8);
                }
            }
        });
    assert_eq!(
        rec.dropped(),
        0,
        "ring overflow would break the cross-check"
    );

    let instants = instant_counts(&rec);
    let metrics = rec.metrics();

    // 1. Per-counter identity: summed over ranks, every recovery counter in
    //    the registry equals the number of matching proto-lane instants.
    let mut by_name: BTreeMap<String, u64> = BTreeMap::new();
    for (key, v) in &metrics {
        let Some((_, name)) = key.split_once('.') else {
            continue;
        };
        if ["retry.", "dup.", "fallback."]
            .iter()
            .any(|p| name.starts_with(p))
        {
            *by_name.entry(name.to_string()).or_insert(0) += v;
        }
    }
    assert!(
        by_name.values().sum::<u64>() > 0,
        "15% ctrl drop over six staged transfers must trigger recovery: {metrics:?}"
    );
    for (name, count) in &by_name {
        let traced = instants
            .iter()
            .filter(|((kind, n), _)| *kind == "proto" && n == name)
            .map(|(_, c)| *c)
            .sum::<u64>();
        assert_eq!(
            traced, *count,
            "counter {name}: {count} increments but {traced} trace instants"
        );
    }
    // ... and no proto-lane recovery instant exists without its counter.
    for ((kind, name), traced) in &instants {
        if *kind == "proto"
            && ["retry.", "dup.", "fallback."]
                .iter()
                .any(|p| name.starts_with(p))
        {
            assert_eq!(
                by_name.get(*name),
                Some(traced),
                "trace instant {name} has no matching counter"
            );
        }
    }

    // 2. Injected faults surface on the HCA lanes, and every RDMA error
    //    CQE maps to exactly one engine-side RDMA retry.
    let hca_fault = |n: &str| {
        instants
            .iter()
            .filter(|((k, name), _)| *k == "hca" && *name == n)
            .map(|(_, c)| *c)
            .sum::<u64>()
    };
    assert!(
        hca_fault("fault.ctrl_drop") > 0,
        "campaign never dropped a control packet"
    );
    let rdma_errors = hca_fault("fault.rdma_error");
    let rdma_retries = by_name.get("retry.chunk_rdma").copied().unwrap_or(0)
        + by_name.get("retry.rdma_direct").copied().unwrap_or(0);
    assert_eq!(
        rdma_errors, rdma_retries,
        "every injected RDMA error CQE must be retried exactly once"
    );
}
