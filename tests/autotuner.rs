//! The adaptive pipeline autotuner vs. the paper's static block size.
//!
//! * `ChunkPolicy::Fixed` must reproduce the static-block pipeline exactly
//!   (bit-identical virtual timings) — it is the ablation baseline.
//! * `ChunkPolicy::Adaptive` starts from the configured block size, so its
//!   first transfer is indistinguishable from Fixed.
//! * After a convergence window, Adaptive must be within 10% of the best
//!   static block size for the workload, without being told which one.

use std::sync::Arc;

use gpu_nc_repro::mpi_sim::{ChunkPolicy, MpiConfig};
use gpu_nc_repro::mv2_gpu_nc::baselines::{fill_vector, VectorXfer};
use gpu_nc_repro::mv2_gpu_nc::GpuCluster;
use sim_core::lock::Mutex;

/// One-way latency of `iters` back-to-back 4 MiB strided transfers,
/// observed at the receiver (barrier-separated), in virtual nanoseconds.
fn measure(cfg: MpiConfig, iters: u32) -> Vec<u64> {
    let lat: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&lat);
    GpuCluster::new(2).mpi_config(cfg).run(move |env| {
        let x = VectorXfer::paper(4 << 20);
        let dt = x.dtype();
        let dev = env.gpu.malloc(x.extent());
        if env.comm.rank() == 0 {
            fill_vector(&env.gpu, dev, &x, 7);
        }
        for it in 0..iters {
            env.comm.barrier();
            let t0 = sim_core::now();
            if env.comm.rank() == 0 {
                env.comm.send(dev, 1, &dt, 1, it);
            } else {
                env.comm.recv(dev, 1, &dt, 0, it);
                sink.lock().push((sim_core::now() - t0).as_nanos());
            }
        }
        env.gpu.free(dev);
    });
    let v = Arc::try_unwrap(lat)
        .map(|m| m.into_inner())
        .unwrap_or_else(|a| a.lock().clone());
    assert_eq!(v.len(), iters as usize);
    v
}

fn fixed(block: usize) -> MpiConfig {
    MpiConfig {
        chunk_size: block,
        policy: ChunkPolicy::Fixed,
        ..MpiConfig::default()
    }
}

#[test]
fn fixed_policy_is_exactly_reproducible() {
    let a = measure(fixed(64 << 10), 3);
    let b = measure(fixed(64 << 10), 3);
    assert_eq!(a, b, "Fixed policy must be deterministic run to run");
}

#[test]
fn adaptive_first_transfer_matches_fixed() {
    // Before any observation, the tuner's cursor sits on the configured
    // chunk size, so transfer #1 is bit-identical to the Fixed policy.
    let adaptive = measure(MpiConfig::default(), 1);
    let fixed64 = measure(fixed(64 << 10), 1);
    assert_eq!(adaptive[0], fixed64[0]);
}

/// Run a 3-rank job where rank 0 streams the measured strided transfer to
/// rank 1 while (optionally) rank 2 hogs rank 1's vbuf pool with an
/// irregular transfer whose size varies per iteration. Returns the
/// `tuner.settled.strided.*` counter keys rank 1's engine recorded.
fn settled_strided_keys(hog: bool) -> Vec<String> {
    use gpu_nc_repro::mpi_sim::Datatype;
    use sim_core::SimDur;

    let cfg = MpiConfig {
        // Window == pool: a granted hog window drains the pool entirely,
        // so the measured stream's CTS is deferred until the hog drains.
        pool_vbufs: 8,
        window_slots: 8,
        ..MpiConfig::default()
    };
    let keys: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&keys);
    let iters = 16u32;
    // Uneven blocks classify as Irregular, keeping the hog's tuner keys
    // disjoint from the measured stream's Strided ones.
    let hog_blocks: &[(usize, isize)] = &[(2, 0), (1, 3)];
    let hog_count = |it: u32| (16 << 10) * (1 + (it % 3) as usize);
    GpuCluster::new(3).mpi_config(cfg).run(move |env| {
        let x = VectorXfer::paper(1 << 20);
        let dt = x.dtype();
        let ht = Datatype::indexed(hog_blocks, &Datatype::double());
        ht.commit();
        let hog_extent = ht.extent() as usize * hog_count(2);
        match env.comm.rank() {
            0 => {
                let dev = env.gpu.malloc(x.extent());
                fill_vector(&env.gpu, dev, &x, 3);
                for it in 0..iters {
                    env.comm.barrier();
                    // Let the hog's RTS land first and claim the pool.
                    sim_core::sleep(SimDur::from_nanos(20_000));
                    env.comm.send(dev, 1, &dt, 1, it);
                }
                env.gpu.free(dev);
            }
            1 => {
                let dev = env.gpu.malloc(x.extent());
                let hdev = env.gpu.malloc(hog_extent);
                for it in 0..iters {
                    env.comm.barrier();
                    let mut reqs = Vec::new();
                    if hog {
                        reqs.push(env.comm.irecv(hdev, hog_count(it), &ht, 2, 1000 + it));
                    }
                    reqs.push(env.comm.irecv(dev, 1, &dt, 0, it));
                    env.comm.waitall(reqs);
                }
                let settled: Vec<String> = env
                    .comm
                    .counters()
                    .snapshot()
                    .keys()
                    .filter(|k| k.starts_with("tuner.settled.strided."))
                    .map(|k| k.to_string())
                    .collect();
                *sink.lock() = settled;
                env.gpu.free(dev);
                env.gpu.free(hdev);
            }
            _ => {
                let hdev = env.gpu.malloc(hog_extent);
                env.gpu.write_bytes(hdev, &vec![5u8; hog_extent]);
                for it in 0..iters {
                    env.comm.barrier();
                    if hog {
                        env.comm.send(hdev, hog_count(it), &ht, 1, 1000 + it);
                    }
                }
                env.gpu.free(hdev);
            }
        }
    });
    let mut v = Arc::try_unwrap(keys)
        .map(|m| m.into_inner())
        .unwrap_or_else(|a| a.lock().clone());
    v.sort();
    v
}

#[test]
fn settled_block_ignores_cts_queueing_delay() {
    // The tuner's latency window opens at the CTS grant, not the RTS
    // match: time spent queued for pool vbufs varies with whatever else
    // the receiver is doing and says nothing about the chunk size. A
    // pool-hogging competitor whose size changes every iteration must
    // therefore not move where the measured stream's search settles.
    let reference = settled_strided_keys(false);
    assert!(
        !reference.is_empty(),
        "measured stream never settled in the uncontended run"
    );
    let contended = settled_strided_keys(true);
    assert_eq!(
        contended, reference,
        "vbuf-pool contention must not move the settled block"
    );
}

#[test]
fn adaptive_converges_within_10_percent_of_best_static() {
    let blocks = [16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10];
    let statics: Vec<u64> = blocks
        .iter()
        .map(|&b| measure(fixed(b), 2)[1]) // [1]: steady state, pools warm
        .collect();
    let best = *statics.iter().min().unwrap();

    let adaptive = measure(MpiConfig::default(), 14);
    let settled = *adaptive.last().unwrap();
    assert!(
        settled as f64 <= best as f64 * 1.10,
        "adaptive settled at {settled} ns, best static is {best} ns \
         (statics: {statics:?}, adaptive trace: {adaptive:?})"
    );
}
