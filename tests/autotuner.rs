//! The adaptive pipeline autotuner vs. the paper's static block size.
//!
//! * `ChunkPolicy::Fixed` must reproduce the static-block pipeline exactly
//!   (bit-identical virtual timings) — it is the ablation baseline.
//! * `ChunkPolicy::Adaptive` starts from the configured block size, so its
//!   first transfer is indistinguishable from Fixed.
//! * After a convergence window, Adaptive must be within 10% of the best
//!   static block size for the workload, without being told which one.

use std::sync::Arc;

use gpu_nc_repro::mpi_sim::{ChunkPolicy, MpiConfig};
use gpu_nc_repro::mv2_gpu_nc::baselines::{fill_vector, VectorXfer};
use gpu_nc_repro::mv2_gpu_nc::GpuCluster;
use sim_core::lock::Mutex;

/// One-way latency of `iters` back-to-back 4 MiB strided transfers,
/// observed at the receiver (barrier-separated), in virtual nanoseconds.
fn measure(cfg: MpiConfig, iters: u32) -> Vec<u64> {
    let lat: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&lat);
    GpuCluster::new(2).mpi_config(cfg).run(move |env| {
        let x = VectorXfer::paper(4 << 20);
        let dt = x.dtype();
        let dev = env.gpu.malloc(x.extent());
        if env.comm.rank() == 0 {
            fill_vector(&env.gpu, dev, &x, 7);
        }
        for it in 0..iters {
            env.comm.barrier();
            let t0 = sim_core::now();
            if env.comm.rank() == 0 {
                env.comm.send(dev, 1, &dt, 1, it);
            } else {
                env.comm.recv(dev, 1, &dt, 0, it);
                sink.lock().push((sim_core::now() - t0).as_nanos());
            }
        }
        env.gpu.free(dev);
    });
    let v = Arc::try_unwrap(lat)
        .map(|m| m.into_inner())
        .unwrap_or_else(|a| a.lock().clone());
    assert_eq!(v.len(), iters as usize);
    v
}

fn fixed(block: usize) -> MpiConfig {
    MpiConfig {
        chunk_size: block,
        policy: ChunkPolicy::Fixed,
        ..MpiConfig::default()
    }
}

#[test]
fn fixed_policy_is_exactly_reproducible() {
    let a = measure(fixed(64 << 10), 3);
    let b = measure(fixed(64 << 10), 3);
    assert_eq!(a, b, "Fixed policy must be deterministic run to run");
}

#[test]
fn adaptive_first_transfer_matches_fixed() {
    // Before any observation, the tuner's cursor sits on the configured
    // chunk size, so transfer #1 is bit-identical to the Fixed policy.
    let adaptive = measure(MpiConfig::default(), 1);
    let fixed64 = measure(fixed(64 << 10), 1);
    assert_eq!(adaptive[0], fixed64[0]);
}

#[test]
fn adaptive_converges_within_10_percent_of_best_static() {
    let blocks = [16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10];
    let statics: Vec<u64> = blocks
        .iter()
        .map(|&b| measure(fixed(b), 2)[1]) // [1]: steady state, pools warm
        .collect();
    let best = *statics.iter().min().unwrap();

    let adaptive = measure(MpiConfig::default(), 14);
    let settled = *adaptive.last().unwrap();
    assert!(
        settled as f64 <= best as f64 * 1.10,
        "adaptive settled at {settled} ns, best static is {best} ns \
         (statics: {statics:?}, adaptive trace: {adaptive:?})"
    );
}
