//! Transport-equivalence tests: the intra-node shared-memory channel (and
//! the device-to-device path that rides on it) must be invisible to the
//! application. Every datatype in the `datatype_zoo` example delivers
//! byte-identical payloads whether the two ranks share a node or sit on
//! different ones — and the co-located run never touches the HCA.

use std::sync::Arc;

use gpu_nc_repro::halo3d::{run_halo3d_topo, Halo3dParams, Variant};
use gpu_nc_repro::mpi_sim::{Datatype, SubarrayOrder};
use gpu_nc_repro::mv2_gpu_nc::GpuCluster;
use gpu_nc_repro::sim_trace::Recorder;
use sim_core::lock::Mutex;
use sim_core::SanitizerMode;

/// Run the three datatype-zoo transfers between two ranks placed by `ppn`
/// (1 = two nodes over the wire, 2 = one node over shared memory) and
/// return the receiver's full buffer bytes per transfer, plus the node-0
/// HCA transmit byte count.
fn zoo_payloads(ppn: usize) -> (Vec<Vec<u8>>, u64) {
    type Payloads = Arc<Mutex<Vec<(u32, Vec<u8>)>>>;
    let rec = Recorder::new();
    let payloads: Payloads = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&payloads);
    GpuCluster::new(2)
        .ppn(ppn)
        .recorder(rec.clone())
        .run(move |env| {
            let comm = &env.comm;
            let gpu = &env.gpu;
            let me = comm.rank();

            // 1. 2-D subarray: a 64x64 f64 tile at (100, 200) of a 512x512 grid.
            let grid = Datatype::subarray(
                &[512, 512],
                &[64, 64],
                &[100, 200],
                SubarrayOrder::C,
                &Datatype::double(),
            );
            grid.commit();
            let field = gpu.malloc(512 * 512 * 8);
            if me == 0 {
                let vals: Vec<f64> = (0..512 * 512).map(|i| i as f64 * 0.25).collect();
                gpu.write_scalars(field, &vals);
                comm.send(field, 1, &grid, 1, 0);
            } else {
                comm.recv(field, 1, &grid, 0, 0);
                sink.lock().push((0, gpu.read_bytes(field, 512 * 512 * 8)));
            }

            // 2. Indexed gather: 512 irregular 3-int blocks every 17 ints.
            let blocks: Vec<(usize, isize)> = (0..512).map(|i| (3, i * 17)).collect();
            let idx = Datatype::indexed(&blocks, &Datatype::int());
            idx.commit();
            let sparse = gpu.malloc((512 * 17 + 16) * 4);
            if me == 0 {
                let vals: Vec<i32> = (0..512 * 17 + 16).collect();
                gpu.write_scalars(sparse, &vals);
                comm.send(sparse, 1, &idx, 1, 1);
            } else {
                comm.recv(sparse, 1, &idx, 0, 1);
                sink.lock()
                    .push((1, gpu.read_bytes(sparse, (512 * 17 + 16) * 4)));
            }

            // 3. Resized struct: interleaved (i32 id, f64 mass) records.
            let particle =
                Datatype::create_struct(&[(1, 0, Datatype::int()), (1, 8, Datatype::double())]);
            let particle = Datatype::resized(&particle, 0, 16);
            particle.commit();
            let particles = gpu.malloc(1000 * 16);
            if me == 0 {
                for i in 0..1000usize {
                    gpu.write_scalars(particles.add(i * 16), &[i as i32]);
                    gpu.write_scalars(particles.add(i * 16 + 8), &[i as f64 * 1.5]);
                }
                comm.send(particles, 1000, &particle, 1, 2);
            } else {
                comm.recv(particles, 1000, &particle, 0, 2);
                sink.lock().push((2, gpu.read_bytes(particles, 1000 * 16)));
            }
        });
    let hca_tx = rec
        .metrics()
        .get("node0.hca.tx_bytes")
        .copied()
        .unwrap_or(0);
    let mut got = Arc::try_unwrap(payloads)
        .map(|m| m.into_inner())
        .unwrap_or_else(|a| a.lock().clone());
    got.sort_by_key(|(tag, _)| *tag);
    (got.into_iter().map(|(_, bytes)| bytes).collect(), hca_tx)
}

#[test]
fn datatype_zoo_is_byte_identical_intra_node_vs_inter_node() {
    let (remote, remote_hca) = zoo_payloads(1);
    let (local, local_hca) = zoo_payloads(2);
    assert_eq!(remote.len(), 3);
    assert_eq!(local.len(), 3);
    for (i, (r, l)) in remote.iter().zip(&local).enumerate() {
        assert_eq!(r, l, "zoo datatype #{i} differs between transports");
    }
    assert!(
        remote_hca > 0,
        "two separate nodes must exchange over the wire"
    );
    assert_eq!(
        local_hca, 0,
        "co-located ranks must never touch the HCA (got {local_hca} tx bytes)"
    );
}

#[test]
fn halo3d_under_sanitizer_is_clean_at_ppn_2() {
    // The full application on mixed intra-/inter-node topology, with the
    // simulation sanitizer collecting: the shm and device-to-device data
    // paths must be as race- and leak-free as the staged RDMA path.
    let params = Halo3dParams {
        grid: (2, 1, 2),
        local: (4, 5, 6),
        iters: 2,
    };
    let (out, san) = run_halo3d_topo::<f64>(
        params,
        Variant::Mv2,
        false,
        SanitizerMode::Collect,
        None,
        None,
        2,
    );
    assert_eq!(out.ranks.len(), 4);
    assert!(
        san.is_empty(),
        "sanitizer reports on the intra-node paths: {san:#?}"
    );
}
