//! Plan-cache effectiveness on a real application: halo3d creates its
//! twelve face datatypes once per rank and reuses them every iteration, so
//! nearly all plan lookups must be cache hits.
//!
//! This binary holds exactly one test: it asserts on the process-global
//! instrument counters, which would race with unrelated tests running in
//! parallel threads of the same binary.

use gpu_nc_repro::halo3d::{run_halo3d, Halo3dParams, Variant};
use gpu_nc_repro::sim_core::instrument;

#[test]
fn halo3d_plan_cache_hit_rate_is_at_least_90_percent() {
    let g = instrument::global();
    let base = g.snapshot();
    run_halo3d::<f32>(
        Halo3dParams {
            grid: (1, 2, 2),
            local: (6, 8, 8),
            iters: 16,
        },
        Variant::Mv2,
        false,
    );
    let d = g.delta(&base);
    let hits = d.get("plan_cache_hit").copied().unwrap_or(0);
    let misses = d.get("plan_cache_miss").copied().unwrap_or(0);
    assert!(hits + misses > 0, "the run must consult the plan cache");
    let rate = hits as f64 / (hits + misses) as f64;
    assert!(
        rate >= 0.9,
        "plan-cache hit rate {rate:.3} below 90% ({hits} hits, {misses} misses)"
    );
}
