//! Failure-injection and misuse tests: the stack must fail loudly and
//! precisely, the way real HCAs and CUDA fail, instead of corrupting data.

use gpu_nc_repro::mpi_sim::{Datatype, MpiWorld};
use gpu_nc_repro::mv2_gpu_nc::GpuCluster;
use hostmem::HostBuf;

#[test]
#[should_panic(expected = "truncated")]
fn device_truncation_is_detected() {
    GpuCluster::new(2).run(|env| {
        let t = Datatype::byte();
        t.commit();
        if env.comm.rank() == 0 {
            let dev = env.gpu.malloc(64 << 10);
            env.comm.send(dev, 64 << 10, &t, 1, 0);
        } else {
            let dev = env.gpu.malloc(1 << 10);
            env.comm.recv(dev, 1 << 10, &t, 0, 0);
        }
    });
}

#[test]
#[should_panic(expected = "simulation deadlock")]
fn mismatched_tags_deadlock_with_diagnostics() {
    MpiWorld::new(2).run(|comm| {
        let t = Datatype::byte();
        t.commit();
        let buf = HostBuf::alloc(1 << 20);
        if comm.rank() == 0 {
            comm.send(buf.base(), 1 << 20, &t, 1, 1); // tag 1 (rendezvous)
        } else {
            comm.recv(buf.base(), 1 << 20, &t, 0, 2); // tag 2: never matches
        }
    });
}

#[test]
#[should_panic(expected = "outside any live allocation")]
fn datatype_reaching_past_device_allocation_faults() {
    GpuCluster::new(2).run(|env| {
        // A column datatype whose footprint exceeds the allocation: the
        // device pack must fault like a GPU segfault, not read garbage.
        let col = Datatype::hvector(1024, 1, 1024, &Datatype::float());
        col.commit();
        let dev = env.gpu.malloc(4096); // far too small
        if env.comm.rank() == 0 {
            env.comm.send(dev, 1, &col, 1, 0);
        } else {
            env.comm.recv(dev, 1, &col, 0, 0);
        }
    });
}

#[test]
#[should_panic(expected = "exceeds host buffer")]
fn datatype_reaching_past_host_buffer_is_rejected() {
    MpiWorld::new(2).run(|comm| {
        let t = Datatype::vector(64, 1, 8, &Datatype::double());
        t.commit();
        let buf = HostBuf::alloc(256); // footprint is ~4 KB
        if comm.rank() == 0 {
            comm.send(buf.base(), 1, &t, 1, 0);
        } else {
            comm.recv(buf.base(), 1, &t, 0, 0);
        }
    });
}

#[test]
#[should_panic(expected = "before MPI_Type_commit")]
fn uncommitted_type_is_rejected() {
    MpiWorld::new(1).run(|comm| {
        let t = Datatype::vector(4, 1, 2, &Datatype::float()); // no commit
        let buf = HostBuf::alloc(64);
        comm.isend(buf.base(), 1, &t, 0, 0);
    });
}

#[test]
#[should_panic(expected = "cudaMalloc failed")]
fn device_oom_reports_clearly() {
    GpuCluster::new(1).gpu_mem(1 << 20).run(|env| {
        let _ = env.gpu.malloc(2 << 20);
    });
}

#[test]
fn zero_length_messages_work_everywhere() {
    GpuCluster::new(2).run(|env| {
        let t = Datatype::byte();
        t.commit();
        let dev = env.gpu.malloc(256);
        let host = HostBuf::alloc(256);
        if env.comm.rank() == 0 {
            env.comm.send(dev, 0, &t, 1, 0);
            env.comm.send(host.base(), 0, &t, 1, 1);
        } else {
            let st = env.comm.recv(dev, 0, &t, 0, 0);
            assert_eq!(st.bytes, 0);
            let st = env.comm.recv(host.base(), 0, &t, 0, 1);
            assert_eq!(st.bytes, 0);
        }
    });
}

#[test]
fn send_to_self_completes() {
    MpiWorld::new(1).run(|comm| {
        let t = Datatype::int();
        t.commit();
        let out = HostBuf::from_vec(vec![7; 64]);
        let inb = HostBuf::alloc(64);
        let r = comm.irecv(inb.base(), 16, &t, 0, 0u32);
        comm.send(out.base(), 16, &t, 0, 0);
        comm.wait(r);
        assert_eq!(inb.read(0, 64), vec![7; 64]);
    });
}
